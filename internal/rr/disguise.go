package rr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"optrr/internal/randx"
)

// disguiseChunk is the fixed record-chunk granularity of the batched
// disguise kernel. The partition into chunks depends only on the record
// count, and chunk c always draws from randx.Stream(seed, c), so the output
// is bit-for-bit identical at every worker count. 8192 records amortize the
// per-chunk Source construction to well under a nanosecond per record.
const disguiseChunk = 8192

// batchWorkers resolves the worker count for a batch over the given number
// of chunks: GOMAXPROCS when unset, never more than one per chunk.
func batchWorkers(workers, chunks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// BatchChunks runs body over [0, total) partitioned into fixed chunks of
// 8192 items, fanned out over the given number of workers (zero means
// GOMAXPROCS). Chunk c covers [c·8192, min((c+1)·8192, total)) and always
// receives the deterministic stream randx.Stream(seed, c), so for any body
// that writes only to its own chunk's output the result depends only on
// (total, seed, body), never on the worker count. This is the shared batch
// driver behind every scheme's DisguiseBatchInto.
//
// Error semantics match a serial sweep: the error returned is the one the
// in-chunk-order scan hits first. In the serial case (one worker) later
// chunks are not run after a failure; in the parallel case in-flight chunks
// finish but the first-in-order error is reported.
func BatchChunks(total int, seed uint64, workers int, body func(lo, hi int, rng *randx.Source) error) error {
	if total <= 0 {
		return nil
	}
	chunks := (total + disguiseChunk - 1) / disguiseChunk
	oneChunk := func(c int) error {
		lo := c * disguiseChunk
		hi := lo + disguiseChunk
		if hi > total {
			hi = total
		}
		return body(lo, hi, randx.Stream(seed, uint64(c)))
	}
	workers = batchWorkers(workers, chunks)
	if workers == 1 {
		for c := 0; c < chunks; c++ {
			if err := oneChunk(c); err != nil {
				return err
			}
		}
		return nil
	}
	// Chunks are claimed from an atomic cursor; error reporting scans the
	// per-chunk results in chunk order afterwards, so the error surfaced is
	// the one the serial sweep would have hit first.
	errs := make([]error, chunks)
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers - 1)
	run := func() {
		for {
			c := int(cursor.Add(1)) - 1
			if c >= chunks {
				return
			}
			errs[c] = oneChunk(c)
		}
	}
	for w := 1; w < workers; w++ {
		go func() {
			defer wg.Done()
			run()
		}()
	}
	run()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// DisguiseBatch is DisguiseBatchInto with a freshly allocated result slice.
func (m *Matrix) DisguiseBatch(records []int, seed uint64, workers int) ([]int, error) {
	out := make([]int, len(records))
	if err := m.DisguiseBatchInto(out, records, seed, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// DisguiseBatchInto applies randomized response to every record — each
// original category c_i replaced by a draw from column i of M — writing the
// disguised categories into dst (same length as records). The records are
// processed through BatchChunks, so the output depends only on
// (M, records, seed), never on the worker count.
//
// On error — an out-of-range record, reported exactly as Disguise reports
// it, for the first offending record — the contents of dst are unspecified.
func (m *Matrix) DisguiseBatchInto(dst, records []int, seed uint64, workers int) error {
	if len(dst) != len(records) {
		return fmt.Errorf("%w: dst length %d for %d records", ErrShape, len(dst), len(records))
	}
	// The alias tables are immutable after construction, so every worker
	// shares them; all per-chunk state is the chunk's own Source.
	samplers, err := m.Samplers()
	if err != nil {
		return err
	}
	n := len(samplers)
	return BatchChunks(len(records), seed, workers, func(lo, hi int, rng *randx.Source) error {
		for k := lo; k < hi; k++ {
			rec := records[k]
			if rec < 0 || rec >= n {
				return fmt.Errorf("%w: record %d has category %d", ErrShape, k, rec)
			}
			dst[k] = samplers[rec].Draw(rng)
		}
		return nil
	})
}
