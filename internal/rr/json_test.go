package rr

import (
	"encoding/json"
	"strings"
	"testing"

	"optrr/internal/randx"
)

func TestMatrixJSONRoundTrip(t *testing.T) {
	r := randx.New(1)
	orig := randomStochastic(r, 5)
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !orig.Equal(&back, 0) {
		t.Fatalf("round trip changed the matrix:\n%v\nvs\n%v", orig, &back)
	}
}

func TestMatrixJSONFormat(t *testing.T) {
	m, err := Warner(2, 0.75)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"categories":2`, `"columns":[[0.75,0.25],[0.25,0.75]]`} {
		if !strings.Contains(s, want) {
			t.Fatalf("JSON %s missing %q", s, want)
		}
	}
}

func TestMatrixJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`{"categories": 2, "columns": [[0.5, 0.6], [0.5, 0.5]]}`,  // column 0 sums to 1.1
		`{"categories": 3, "columns": [[0.5, 0.5], [0.5, 0.5]]}`,  // arity mismatch
		`{"categories": 2, "columns": [[1.5, -0.5], [0.5, 0.5]]}`, // out of range
		`{"categories": 2, "columns": [[0.5], [0.5, 0.5]]}`,       // ragged
		`not json`,
	}
	for i, c := range cases {
		var m Matrix
		if err := json.Unmarshal([]byte(c), &m); err == nil {
			t.Errorf("case %d: invalid matrix accepted", i)
		}
	}
}

func TestMatrixJSONDecodedIsUsable(t *testing.T) {
	m, err := Warner(4, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Matrix
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	out, err := back.Disguise([]int{0, 1, 2, 3}, randx.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatal("decoded matrix cannot disguise")
	}
	if _, err := back.EstimateInversionFromDistribution([]float64{0.25, 0.25, 0.25, 0.25}); err != nil {
		t.Fatal(err)
	}
}
