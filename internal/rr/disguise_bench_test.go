package rr

import (
	"fmt"
	"runtime"
	"testing"

	"optrr/internal/randx"
)

// BenchmarkDisguise compares the sequential single-stream Disguise against
// the chunked batch kernel at 1, 4 and GOMAXPROCS workers. The batch w1
// variant measures the pure chunking overhead (one Source per 8192 records);
// larger counts only win on multi-core machines.
func BenchmarkDisguise(b *testing.B) {
	m, err := Warner(10, 0.7)
	if err != nil {
		b.Fatal(err)
	}
	const total = 100000
	recs := batchRecords(10, total, 1)
	b.Run("serial", func(b *testing.B) {
		r := randx.New(1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := m.Disguise(recs, r); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, wc := range []struct {
		label   string
		workers int
	}{
		{"w1", 1},
		{"w4", 4},
		{"wmax", runtime.GOMAXPROCS(0)},
	} {
		b.Run(fmt.Sprintf("batch/%s", wc.label), func(b *testing.B) {
			dst := make([]int, total)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := m.DisguiseBatchInto(dst, recs, 1, wc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
