package rr

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"optrr/internal/randx"
)

// batchRecords draws a record vector with every category represented.
func batchRecords(n, total int, seed uint64) []int {
	r := randx.New(seed)
	recs := make([]int, total)
	for i := range recs {
		recs[i] = r.Intn(n)
	}
	return recs
}

// TestDisguiseBatchDeterministicAcrossWorkers is the batch kernel's
// contract: the disguised output depends only on (M, records, seed), never
// on the worker count, including record counts straddling chunk boundaries.
func TestDisguiseBatchDeterministicAcrossWorkers(t *testing.T) {
	m, err := Warner(5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int{1, disguiseChunk - 1, disguiseChunk, disguiseChunk + 1, 3*disguiseChunk + 77} {
		recs := batchRecords(5, total, uint64(total))
		want, err := m.DisguiseBatch(recs, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
			got, err := m.DisguiseBatch(recs, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("total=%d workers=%d: record %d = %d, want %d", total, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDisguiseBatchChunkBoundaryProperty is the exhaustive form of the
// worker-independence contract around chunk boundaries: for a sweep of
// record counts that are deliberately NOT multiples of the 8192-record chunk
// (one below, one above, mid-chunk offsets, a sub-chunk batch), the parallel
// output must equal the serial output at every worker count from 1 through
// well past GOMAXPROCS. Derived totals are seeded per-total so each case is
// a distinct record vector.
func TestDisguiseBatchChunkBoundaryProperty(t *testing.T) {
	m, err := FRAPP(7, 4)
	if err != nil {
		t.Fatal(err)
	}
	totals := []int{
		1, 17, disguiseChunk / 2,
		disguiseChunk - 1, disguiseChunk + 1,
		2*disguiseChunk - 1, 2*disguiseChunk + 1,
		2*disguiseChunk + disguiseChunk/3,
		5*disguiseChunk - 123,
	}
	maxWorkers := runtime.GOMAXPROCS(0) + 3
	if maxWorkers < 9 {
		maxWorkers = 9
	}
	for _, total := range totals {
		if total%disguiseChunk == 0 {
			t.Fatalf("test bug: total %d is a chunk multiple", total)
		}
		recs := batchRecords(7, total, 1000+uint64(total))
		want, err := m.DisguiseBatch(recs, 77, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int, total)
		for w := 1; w <= maxWorkers; w++ {
			if err := m.DisguiseBatchInto(got, recs, 77, w); err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("total=%d workers=%d: record %d = %d, want serial %d", total, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestBatchChunksSchedule pins the shared driver's contract directly: every
// index is visited exactly once, chunk c spans [c·8192, min((c+1)·8192,
// total)) and receives the stream for index c, at any worker count.
func TestBatchChunksSchedule(t *testing.T) {
	total := 2*disguiseChunk + 99
	for _, w := range []int{0, 1, 2, 5} {
		visited := make([]int, total)
		err := BatchChunks(total, 55, w, func(lo, hi int, rng *randx.Source) error {
			c := lo / disguiseChunk
			if lo != c*disguiseChunk {
				return errors.New("chunk start off the 8192 grid")
			}
			wantHi := lo + disguiseChunk
			if wantHi > total {
				wantHi = total
			}
			if hi != wantHi {
				return errors.New("chunk end off the 8192 grid")
			}
			if got, want := rng.Uint64(), randx.Stream(55, uint64(c)).Uint64(); got != want {
				return errors.New("chunk stream not Stream(seed, chunk)")
			}
			for i := lo; i < hi; i++ {
				visited[i]++
			}
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range visited {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, v)
			}
		}
	}
	if err := BatchChunks(0, 1, 4, func(lo, hi int, rng *randx.Source) error {
		return errors.New("body ran for an empty batch")
	}); err != nil {
		t.Fatal(err)
	}
}

// TestDisguiseBatchDistribution checks the statistics: disguising a large
// batch lands near the implied disguised distribution M·P.
func TestDisguiseBatchDistribution(t *testing.T) {
	m, err := Warner(4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	const total = 200000
	recs := batchRecords(4, total, 9)
	got, err := m.DisguiseBatch(recs, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	prior := make([]float64, 4)
	for _, rec := range recs {
		prior[rec] += 1.0 / total
	}
	want, err := m.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, v := range got {
		counts[v] += 1.0 / total
	}
	for i := range want {
		if math.Abs(counts[i]-want[i]) > 0.01 {
			t.Errorf("category %d frequency %.4f, want %.4f ± 0.01", i, counts[i], want[i])
		}
	}
}

// TestDisguiseBatchErrors pins the failure modes to Disguise's: shape
// mismatches and the first out-of-range record, in serial and parallel.
func TestDisguiseBatchErrors(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DisguiseBatchInto(make([]int, 2), []int{0, 1, 2}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("length mismatch error = %v, want ErrShape", err)
	}
	// The bad record sits in the second chunk; every worker count must
	// report that exact record, matching the serial Disguise message.
	recs := batchRecords(3, 2*disguiseChunk, 3)
	bad := disguiseChunk + 17
	recs[bad] = 9
	recs[bad+100] = -1
	wantMsg := "record 8209 has category 9"
	for _, w := range []int{1, 4} {
		err := m.DisguiseBatchInto(make([]int, len(recs)), recs, 1, w)
		if !errors.Is(err, ErrShape) {
			t.Fatalf("workers=%d: out-of-range error = %v, want ErrShape", w, err)
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Fatalf("workers=%d: error %q does not name the first bad record (%s)", w, err, wantMsg)
		}
	}
}

// TestDisguiseBatchEmpty: zero records disguise to zero records.
func TestDisguiseBatchEmpty(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.DisguiseBatch(nil, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("disguised %d records from none", len(out))
	}
}

// TestDisguiseBatchIdentity: the identity matrix must pass records through
// unchanged on every path.
func TestDisguiseBatchIdentity(t *testing.T) {
	m := Identity(6)
	recs := batchRecords(6, disguiseChunk+33, 5)
	got, err := m.DisguiseBatch(recs, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if got[i] != rec {
			t.Fatalf("identity disguise changed record %d: %d -> %d", i, rec, got[i])
		}
	}
}
