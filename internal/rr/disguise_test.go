package rr

import (
	"errors"
	"math"
	"runtime"
	"strings"
	"testing"

	"optrr/internal/randx"
)

// batchRecords draws a record vector with every category represented.
func batchRecords(n, total int, seed uint64) []int {
	r := randx.New(seed)
	recs := make([]int, total)
	for i := range recs {
		recs[i] = r.Intn(n)
	}
	return recs
}

// TestDisguiseBatchDeterministicAcrossWorkers is the batch kernel's
// contract: the disguised output depends only on (M, records, seed), never
// on the worker count, including record counts straddling chunk boundaries.
func TestDisguiseBatchDeterministicAcrossWorkers(t *testing.T) {
	m, err := Warner(5, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	for _, total := range []int{1, disguiseChunk - 1, disguiseChunk, disguiseChunk + 1, 3*disguiseChunk + 77} {
		recs := batchRecords(5, total, uint64(total))
		want, err := m.DisguiseBatch(recs, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
			got, err := m.DisguiseBatch(recs, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("total=%d workers=%d: record %d = %d, want %d", total, w, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDisguiseBatchDistribution checks the statistics: disguising a large
// batch lands near the implied disguised distribution M·P.
func TestDisguiseBatchDistribution(t *testing.T) {
	m, err := Warner(4, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	const total = 200000
	recs := batchRecords(4, total, 9)
	got, err := m.DisguiseBatch(recs, 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	prior := make([]float64, 4)
	for _, rec := range recs {
		prior[rec] += 1.0 / total
	}
	want, err := m.DisguisedDistribution(prior)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 4)
	for _, v := range got {
		counts[v] += 1.0 / total
	}
	for i := range want {
		if math.Abs(counts[i]-want[i]) > 0.01 {
			t.Errorf("category %d frequency %.4f, want %.4f ± 0.01", i, counts[i], want[i])
		}
	}
}

// TestDisguiseBatchErrors pins the failure modes to Disguise's: shape
// mismatches and the first out-of-range record, in serial and parallel.
func TestDisguiseBatchErrors(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DisguiseBatchInto(make([]int, 2), []int{0, 1, 2}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("length mismatch error = %v, want ErrShape", err)
	}
	// The bad record sits in the second chunk; every worker count must
	// report that exact record, matching the serial Disguise message.
	recs := batchRecords(3, 2*disguiseChunk, 3)
	bad := disguiseChunk + 17
	recs[bad] = 9
	recs[bad+100] = -1
	wantMsg := "record 8209 has category 9"
	for _, w := range []int{1, 4} {
		err := m.DisguiseBatchInto(make([]int, len(recs)), recs, 1, w)
		if !errors.Is(err, ErrShape) {
			t.Fatalf("workers=%d: out-of-range error = %v, want ErrShape", w, err)
		}
		if !strings.Contains(err.Error(), wantMsg) {
			t.Fatalf("workers=%d: error %q does not name the first bad record (%s)", w, err, wantMsg)
		}
	}
}

// TestDisguiseBatchEmpty: zero records disguise to zero records.
func TestDisguiseBatchEmpty(t *testing.T) {
	m, err := Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.DisguiseBatch(nil, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("disguised %d records from none", len(out))
	}
}

// TestDisguiseBatchIdentity: the identity matrix must pass records through
// unchanged on every path.
func TestDisguiseBatchIdentity(t *testing.T) {
	m := Identity(6)
	recs := batchRecords(6, disguiseChunk+33, 5)
	got, err := m.DisguiseBatch(recs, 11, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if got[i] != rec {
			t.Fatalf("identity disguise changed record %d: %d -> %d", i, rec, got[i])
		}
	}
}
