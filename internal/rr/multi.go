package rr

import (
	"errors"
	"fmt"

	"optrr/internal/matrix"
	"optrr/internal/randx"
)

// Multi-attribute batch disguise and estimation, Kronecker-factored: a
// d-attribute record is disguised by applying each attribute's matrix to its
// column independently, and the joint distribution is reconstructed by
// applying the factored inverse (⊗M_d)⁻¹ = ⊗M_d⁻¹ to the empirical joint of
// the disguised records — the joint channel over the product space is never
// materialized. This is the data-pipeline counterpart of the factored
// metrics in internal/metrics: disguise costs the same as d independent 1-D
// batches, and inversion costs d small LU factorizations plus one
// O(N·Σn_d) factored apply.

// validateTuple checks a per-attribute matrix list.
func validateTuple(ms []*Matrix) error {
	if len(ms) == 0 {
		return fmt.Errorf("%w: no attributes", ErrShape)
	}
	for d, m := range ms {
		if m == nil {
			return fmt.Errorf("%w: nil matrix for attribute %d", ErrShape, d)
		}
	}
	return nil
}

// tupleSeeds derives one independent disguise seed per attribute from the
// caller's seed by sequential draws. (Deliberately not randx.StreamSeed(seed,
// d) reused as a batch seed: DisguiseBatchInto already streams per chunk from
// its seed, and the splitmix64 mixing is symmetric in (attribute, chunk) —
// attribute 1/chunk 0 would collide with attribute 0/chunk 1.)
func tupleSeeds(seed uint64, attrs int) []uint64 {
	r := randx.New(seed)
	out := make([]uint64, attrs)
	for d := range out {
		out[d] = r.Uint64()
	}
	return out
}

// TupleDisguiseBatch disguises multi-attribute records — records[k][d] is
// record k's category on attribute d — by applying ms[d] to column d via the
// chunked batch kernel, returning freshly allocated disguised records. The
// output depends only on (ms, records, seed), never on the worker count
// (zero workers means GOMAXPROCS), exactly as for DisguiseBatch.
func TupleDisguiseBatch(ms []*Matrix, records [][]int, seed uint64, workers int) ([][]int, error) {
	backing := make([]int, len(records)*len(ms))
	dst := make([][]int, len(records))
	for k := range dst {
		dst[k] = backing[k*len(ms) : (k+1)*len(ms) : (k+1)*len(ms)]
	}
	if err := TupleDisguiseBatchInto(dst, records, ms, seed, workers); err != nil {
		return nil, err
	}
	return dst, nil
}

// TupleDisguiseBatchInto is TupleDisguiseBatch into caller-provided storage:
// dst must have one row per record, each of attribute length. dst and
// records may not alias. On error the contents of dst are unspecified.
func TupleDisguiseBatchInto(dst, records [][]int, ms []*Matrix, seed uint64, workers int) error {
	if err := validateTuple(ms); err != nil {
		return err
	}
	attrs := len(ms)
	if len(dst) != len(records) {
		return fmt.Errorf("%w: dst of %d rows for %d records", ErrShape, len(dst), len(records))
	}
	for k, rec := range records {
		if len(rec) != attrs {
			return fmt.Errorf("%w: record %d has %d attributes, want %d", ErrShape, k, len(rec), attrs)
		}
		if len(dst[k]) != attrs {
			return fmt.Errorf("%w: dst row %d has %d attributes, want %d", ErrShape, k, len(dst[k]), attrs)
		}
	}
	seeds := tupleSeeds(seed, attrs)
	col := make([]int, len(records))
	out := make([]int, len(records))
	for d, m := range ms {
		for k, rec := range records {
			col[k] = rec[d]
		}
		if err := m.DisguiseBatchInto(out, col, seeds[d], workers); err != nil {
			return fmt.Errorf("rr: attribute %d: %w", d, err)
		}
		for k, v := range out {
			dst[k][d] = v
		}
	}
	return nil
}

// TupleEstimateJoint reconstructs the original joint distribution (row-major
// over the product space, attribute 0 slowest — mining.MultiRR.Index order)
// from disguised multi-attribute records via the factored inversion
// estimator: P̂ = (⊗M_d⁻¹)·P̂*, where P̂* is the empirical joint of the
// disguised records. Like EstimateInversion, the estimate is unbiased but
// may leave the simplex on small samples; pass it through Clip for a proper
// distribution. It returns ErrSingular if any attribute's matrix is
// singular.
func TupleEstimateJoint(ms []*Matrix, disguised [][]int) ([]float64, error) {
	if err := validateTuple(ms); err != nil {
		return nil, err
	}
	if len(disguised) == 0 {
		return nil, ErrEmptyData
	}
	attrs := len(ms)
	dims := make([]int, attrs)
	cells := 1
	for d, m := range ms {
		dims[d] = m.N()
		cells *= m.N()
	}
	counts := make([]float64, cells)
	for k, rec := range disguised {
		if len(rec) != attrs {
			return nil, fmt.Errorf("%w: record %d has %d attributes, want %d", ErrShape, k, len(rec), attrs)
		}
		idx := 0
		for d, v := range rec {
			if v < 0 || v >= dims[d] {
				return nil, fmt.Errorf("%w: record %d has category %d on attribute %d", ErrShape, k, v, d)
			}
			idx = idx*dims[d] + v
		}
		counts[idx]++
	}
	invN := 1 / float64(len(disguised))
	for i := range counts {
		counts[i] *= invN
	}
	factors := make([]*matrix.Dense, attrs)
	for d, m := range ms {
		factors[d] = m.DenseView()
	}
	theta, err := matrix.NewKron(factors...)
	if err != nil {
		return nil, err
	}
	inv := matrix.KronZeros(dims)
	if err := theta.InverseInto(inv, matrix.NewLU()); err != nil {
		if errors.Is(err, matrix.ErrSingular) {
			return nil, fmt.Errorf("%w: %v", ErrSingular, err)
		}
		return nil, err
	}
	est := make([]float64, cells)
	tmp := make([]float64, cells)
	if err := inv.MulVecInto(est, counts, tmp); err != nil {
		return nil, err
	}
	return est, nil
}
