package rr

import (
	"encoding/json"
	"fmt"
)

// JSON serialization for RR matrices, so optimized matrices can be persisted
// and shipped to the clients that apply them. The wire form is explicit
// about the orientation to prevent silent transposition bugs:
//
//	{"categories": 3, "columns": [[...], [...], [...]]}
//
// where columns[i][j] = θ_{j,i} = P(report c_j | true value c_i), and every
// column sums to 1. Validation runs on decode, so a hand-edited file that
// breaks stochasticity is rejected.

type matrixJSON struct {
	Categories int         `json:"categories"`
	Columns    [][]float64 `json:"columns"`
}

// MarshalJSON implements json.Marshaler.
func (m *Matrix) MarshalJSON() ([]byte, error) {
	n := m.N()
	cols := make([][]float64, n)
	for i := 0; i < n; i++ {
		cols[i] = m.Column(i)
	}
	return json.Marshal(matrixJSON{Categories: n, Columns: cols})
}

// UnmarshalJSON implements json.Unmarshaler, validating the RR invariants.
func (m *Matrix) UnmarshalJSON(data []byte) error {
	var raw matrixJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("rr: decoding matrix: %w", err)
	}
	if raw.Categories != len(raw.Columns) {
		return fmt.Errorf("%w: %d categories but %d columns", ErrShape, raw.Categories, len(raw.Columns))
	}
	decoded, err := FromColumns(raw.Columns)
	if err != nil {
		return err
	}
	m.m = decoded.m
	m.samplers.Store(nil)
	return nil
}
