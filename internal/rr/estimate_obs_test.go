package rr

import (
	"testing"

	"optrr/internal/obs"
)

// TestEstimateIterativeTracesConvergence asserts the iterative estimator
// emits one event per Bayes-update step with strictly positive, eventually
// sub-tolerance deltas, and a terminal done event.
func TestEstimateIterativeTracesConvergence(t *testing.T) {
	m, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	pStar := []float64{0.4, 0.3, 0.2, 0.1}
	rec := obs.NewMemory()
	opts := IterativeOptions{Tolerance: 1e-8, Recorder: rec}
	if _, err := m.EstimateIterativeFromDistribution(pStar, opts); err != nil {
		t.Fatal(err)
	}

	iters := rec.Named("estimator.iteration")
	if len(iters) == 0 {
		t.Fatal("no iteration events")
	}
	for i, e := range iters {
		if e.Fields["iter"] != i {
			t.Fatalf("event %d has iter %v", i, e.Fields["iter"])
		}
	}
	last := iters[len(iters)-1].Fields["delta"].(float64)
	if last >= 1e-8 {
		t.Fatalf("final delta %v not under tolerance", last)
	}
	done := rec.Named("estimator.done")
	if len(done) != 1 {
		t.Fatalf("got %d done events, want 1", len(done))
	}
	if done[0].Fields["converged"] != true ||
		done[0].Fields["iterations"] != len(iters) {
		t.Fatalf("done event = %v (want converged after %d iterations)", done[0].Fields, len(iters))
	}
	// The trace must record monotone-ish convergence overall: the last
	// delta is far below the first.
	first := iters[0].Fields["delta"].(float64)
	if first <= last {
		t.Fatalf("deltas did not shrink: first %v, last %v", first, last)
	}
}

// TestEstimateIterativeNonConvergenceTrace: an impossible budget yields a
// done event with converged=false alongside ErrNoConvergence.
func TestEstimateIterativeNonConvergenceTrace(t *testing.T) {
	m, err := Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	rec := obs.NewMemory()
	opts := IterativeOptions{MaxIterations: 2, Tolerance: 1e-15, Recorder: rec}
	if _, err := m.EstimateIterativeFromDistribution([]float64{0.4, 0.3, 0.2, 0.1}, opts); err == nil {
		t.Fatal("expected ErrNoConvergence")
	}
	done := rec.Named("estimator.done")
	if len(done) != 1 || done[0].Fields["converged"] != false {
		t.Fatalf("done events = %v", done)
	}
	if len(rec.Named("estimator.iteration")) != 2 {
		t.Fatal("iteration events missing")
	}
}

// TestEstimateIterativeNilRecorderUnchanged: the untraced path returns the
// same estimate as the traced one.
func TestEstimateIterativeNilRecorderUnchanged(t *testing.T) {
	m, err := Warner(5, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pStar := []float64{0.3, 0.25, 0.2, 0.15, 0.1}
	opts := IterativeOptions{Tolerance: 1e-7}
	plain, err := m.EstimateIterativeFromDistribution(pStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Recorder = obs.NewMemory()
	traced, err := m.EstimateIterativeFromDistribution(pStar, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != traced[i] {
			t.Fatalf("estimates diverge at %d: %v vs %v", i, plain[i], traced[i])
		}
	}
}
