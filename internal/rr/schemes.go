package rr

import (
	"fmt"

	"optrr/internal/matrix"
)

// The three published RR schemes of Section III-B. All three produce
// symmetric matrices with a constant diagonal γ and constant off-diagonal
// (1−γ)/(n−1); they differ only in how their parameter maps onto γ
// (Theorem 2 shows their solution sets coincide).

// diagonalScheme builds the constant-diagonal matrix with diagonal gamma.
func diagonalScheme(n int, gamma float64) (*Matrix, error) {
	if n < 2 {
		return nil, fmt.Errorf("%w: need at least 2 categories, got %d", ErrShape, n)
	}
	if gamma < 0 || gamma > 1 {
		return nil, fmt.Errorf("%w: diagonal %v outside [0,1]", ErrNotStochastic, gamma)
	}
	off := (1 - gamma) / float64(n-1)
	d := matrix.New(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i == j {
				d.Set(j, i, gamma)
			} else {
				d.Set(j, i, off)
			}
		}
	}
	return FromDense(d)
}

// Warner returns the Warner-scheme matrix: diagonal p, off-diagonal
// (1−p)/(n−1). p ∈ [0, 1].
func Warner(n int, p float64) (*Matrix, error) {
	m, err := diagonalScheme(n, p)
	if err != nil {
		return nil, fmt.Errorf("rr: Warner(p=%v): %w", p, err)
	}
	return m, nil
}

// UniformPerturbation returns Agrawal et al.'s UP matrix: each value is
// retained with probability q and otherwise replaced by a uniform draw over
// the whole domain, giving diagonal q + (1−q)/n and off-diagonal (1−q)/n.
// q ∈ [0, 1].
func UniformPerturbation(n int, q float64) (*Matrix, error) {
	if q < 0 || q > 1 {
		return nil, fmt.Errorf("rr: UniformPerturbation(q=%v): %w: q outside [0,1]", q, ErrNotStochastic)
	}
	gamma := q + (1-q)/float64(n)
	m, err := diagonalScheme(n, gamma)
	if err != nil {
		return nil, fmt.Errorf("rr: UniformPerturbation(q=%v): %w", q, err)
	}
	return m, nil
}

// FRAPP returns Agrawal & Haritsa's FRAPP matrix: diagonal λ/(λ+n−1),
// off-diagonal 1/(λ+n−1). λ must be positive.
func FRAPP(n int, lambda float64) (*Matrix, error) {
	if lambda <= 0 {
		return nil, fmt.Errorf("rr: FRAPP(lambda=%v): %w: lambda must be positive", lambda, ErrNotStochastic)
	}
	gamma := lambda / (lambda + float64(n-1))
	m, err := diagonalScheme(n, gamma)
	if err != nil {
		return nil, fmt.Errorf("rr: FRAPP(lambda=%v): %w", lambda, err)
	}
	return m, nil
}

// Parameter maps of Theorem 2: each scheme's parameter expressed as the
// common diagonal value γ, and the inverse maps. Warner covers γ ∈ [0, 1];
// UP covers γ ∈ [1/n, 1]; FRAPP covers γ ∈ (0, 1).

// WarnerGamma returns the diagonal γ of Warner(p): γ = p.
func WarnerGamma(n int, p float64) float64 { return p }

// UPGamma returns the diagonal γ of UniformPerturbation(q).
func UPGamma(n int, q float64) float64 { return q + (1-q)/float64(n) }

// FRAPPGamma returns the diagonal γ of FRAPP(λ).
func FRAPPGamma(n int, lambda float64) float64 {
	return lambda / (lambda + float64(n-1))
}

// GammaToWarnerP inverts WarnerGamma: p = γ.
func GammaToWarnerP(n int, gamma float64) float64 { return gamma }

// GammaToUPQ inverts UPGamma: q = (nγ − 1)/(n − 1). Only γ ≥ 1/n maps to a
// valid q.
func GammaToUPQ(n int, gamma float64) float64 {
	return (float64(n)*gamma - 1) / float64(n-1)
}

// GammaToFRAPPLambda inverts FRAPPGamma: λ = γ(n−1)/(1−γ). Only γ < 1 maps
// to a finite λ.
func GammaToFRAPPLambda(n int, gamma float64) float64 {
	return gamma * float64(n-1) / (1 - gamma)
}

// WarnerSweep returns the matrices of the Warner scheme for p = 0, 1/steps,
// 2/steps, ..., 1 — the 1001-matrix sweep of the paper's methodology uses
// steps = 1000.
func WarnerSweep(n, steps int) ([]*Matrix, error) {
	if steps < 1 {
		return nil, fmt.Errorf("rr: WarnerSweep needs at least 1 step, got %d", steps)
	}
	out := make([]*Matrix, 0, steps+1)
	for k := 0; k <= steps; k++ {
		m, err := Warner(n, float64(k)/float64(steps))
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}
