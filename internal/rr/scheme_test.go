package rr

import (
	"strings"
	"testing"

	"optrr/internal/randx"
)

// The dense matrix must satisfy the Scheme interface.
var _ Scheme = (*Matrix)(nil)

func mustMatrix(t *testing.T) func(*Matrix, error) *Matrix {
	t.Helper()
	return func(m *Matrix, err error) *Matrix {
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
}

func TestDenseSchemeBasics(t *testing.T) {
	m := mustMatrix(t)(Warner(4, 0.7))
	if got := m.Kind(); got != DenseKind {
		t.Fatalf("Kind() = %q, want %q", got, DenseKind)
	}
	if m.Domain() != 4 || m.ReportSpace() != 4 {
		t.Fatalf("Domain/ReportSpace = %d/%d, want 4/4", m.Domain(), m.ReportSpace())
	}
}

func TestDenseDisguiseValueMatchesDisguise(t *testing.T) {
	m := mustMatrix(t)(Warner(5, 0.6))
	records := make([]int, 200)
	for k := range records {
		records[k] = k % 5
	}
	batch, err := m.Disguise(records, randx.New(99))
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(99)
	for k, rec := range records {
		got, err := m.DisguiseValue(rec, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != batch[k] {
			t.Fatalf("record %d: DisguiseValue = %d, Disguise = %d", k, got, batch[k])
		}
	}
	if _, err := m.DisguiseValue(5, rng); err == nil {
		t.Fatal("DisguiseValue accepted an out-of-range value")
	}
}

func TestDenseEstimateFromMatchesInversion(t *testing.T) {
	m := mustMatrix(t)(Warner(3, 0.8))
	counts := []int{500, 300, 200}
	reports := make([]int, 0, 1000)
	for cat, c := range counts {
		for i := 0; i < c; i++ {
			reports = append(reports, cat)
		}
	}
	want, err := m.EstimateInversion(reports)
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.EstimateFrom(counts, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("category %d: EstimateFrom = %v, EstimateInversion = %v", i, got[i], want[i])
		}
	}
	sel, err := m.EstimateFrom(counts, []int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sel[0] != want[2] || sel[1] != want[0] {
		t.Fatalf("selected estimates %v, want [%v %v]", sel, want[2], want[0])
	}
	if _, err := m.EstimateFrom(counts, []int{3}); err == nil {
		t.Fatal("EstimateFrom accepted an out-of-range category")
	}
	if _, err := m.EstimateFrom([]int{0, 0, 0}, nil); err == nil {
		t.Fatal("EstimateFrom accepted all-zero counts")
	}
	if _, err := m.EstimateFrom([]int{1, 2}, nil); err == nil {
		t.Fatal("EstimateFrom accepted a short counts slice")
	}
}

func TestSchemeEnvelopeRoundTrip(t *testing.T) {
	m := mustMatrix(t)(UniformPerturbation(4, 0.55))
	data, err := MarshalScheme(m)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"kind":"dense"`) {
		t.Fatalf("envelope missing kind tag: %s", data)
	}
	s, err := UnmarshalScheme(data)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := s.(*Matrix)
	if !ok {
		t.Fatalf("decoded scheme is %T, want *Matrix", s)
	}
	if !back.Equal(m, 0) {
		t.Fatal("round-tripped matrix differs")
	}
}

func TestUnmarshalSchemeRejectsUnknownKind(t *testing.T) {
	if _, err := UnmarshalScheme([]byte(`{"kind":"nope","scheme":{}}`)); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := UnmarshalScheme([]byte(`{"scheme":{}}`)); err == nil {
		t.Fatal("missing kind accepted")
	}
}

func TestSchemeVersionDetectsChange(t *testing.T) {
	a := mustMatrix(t)(Warner(4, 0.7))
	b := mustMatrix(t)(Warner(4, 0.7))
	c := mustMatrix(t)(Warner(4, 0.71))
	va, err := SchemeVersion(a)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := SchemeVersion(b)
	if err != nil {
		t.Fatal(err)
	}
	vc, err := SchemeVersion(c)
	if err != nil {
		t.Fatal(err)
	}
	if va != vb {
		t.Fatalf("identical schemes have versions %q and %q", va, vb)
	}
	if va == vc {
		t.Fatalf("different schemes share version %q", va)
	}
}

func TestSamplersCachedAndInvalidated(t *testing.T) {
	m := mustMatrix(t)(Warner(3, 0.75))
	s1, err := m.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := m.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	if &s1[0] != &s2[0] {
		t.Fatal("second Samplers call rebuilt the table")
	}
	// Overwriting the columns must invalidate the cache: draws after
	// SetColumns follow the new columns, exactly as a fresh matrix would.
	id := Identity(3)
	cols := make([][]float64, 3)
	for i := range cols {
		cols[i] = id.Column(i)
	}
	if err := m.SetColumns(cols); err != nil {
		t.Fatal(err)
	}
	rng := randx.New(7)
	for v := 0; v < 3; v++ {
		got, err := m.DisguiseValue(v, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("identity scheme disguised %d as %d: stale sampler cache", v, got)
		}
	}
}

func TestSamplersMatchUncachedDraws(t *testing.T) {
	// The cache must be bit-for-bit invisible: draws through the cached
	// samplers equal draws through freshly built alias tables.
	m := mustMatrix(t)(FRAPP(6, 3))
	fresh := make([]*randx.Alias, 6)
	for i := range fresh {
		a, err := randx.NewAlias(m.Column(i))
		if err != nil {
			t.Fatal(err)
		}
		fresh[i] = a
	}
	cached, err := m.Samplers()
	if err != nil {
		t.Fatal(err)
	}
	r1, r2 := randx.New(1234), randx.New(1234)
	for k := 0; k < 5000; k++ {
		v := k % 6
		if got, want := cached[v].Draw(r1), fresh[v].Draw(r2); got != want {
			t.Fatalf("draw %d: cached %d, fresh %d", k, got, want)
		}
	}
}

func TestMatrixJSONDecodeInvalidatesSamplers(t *testing.T) {
	m := mustMatrix(t)(Warner(3, 0.9))
	if _, err := m.Samplers(); err != nil {
		t.Fatal(err)
	}
	data, err := Identity(3).MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	rng := randx.New(3)
	for v := 0; v < 3; v++ {
		got, err := m.DisguiseValue(v, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != v {
			t.Fatalf("decoded identity disguised %d as %d: stale sampler cache", v, got)
		}
	}
}
