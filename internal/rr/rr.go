// Package rr implements the Randomized Response technique of Section III of
// the paper: column-stochastic disguise matrices, the three published RR
// schemes (Warner, Uniform Perturbation, FRAPP), the disguise operation, and
// the two distribution-reconstruction estimators (inversion, Theorem 1; and
// the iterative EM-style estimator of Agrawal et al., Equation 3).
//
// Index convention, matching the paper: for an RR matrix M, the entry
// M[j][i] = θ_{j,i} is the probability that original category c_i is
// reported as category c_j. Columns therefore sum to one.
package rr

import (
	"errors"
	"fmt"
	"math"
	"sync/atomic"

	"optrr/internal/matrix"
	"optrr/internal/randx"
)

// Tolerance for validating that columns sum to one.
const stochasticTol = 1e-9

// Matrix is a column-stochastic randomized-response matrix over n categories.
// It wraps a dense matrix and maintains the RR invariants: square, all
// entries in [0, 1], every column summing to 1.
type Matrix struct {
	m *matrix.Dense

	// samplers lazily caches the per-column alias samplers (see Samplers).
	// SetColumns invalidates it; all other methods leave the columns — and
	// therefore the cache — untouched.
	samplers atomic.Pointer[[]*randx.Alias]
}

// RR errors.
var (
	// ErrNotStochastic reports a matrix whose entries are outside [0,1] or
	// whose columns do not sum to one.
	ErrNotStochastic = errors.New("rr: matrix is not column-stochastic")
	// ErrSingular reports a non-invertible RR matrix, for which the
	// inversion estimator is undefined.
	ErrSingular = errors.New("rr: matrix is singular")
	// ErrShape reports incompatible dimensions.
	ErrShape = errors.New("rr: dimension mismatch")
)

// FromDense validates and wraps a dense matrix as an RR matrix. The dense
// matrix is cloned, so later mutation of d does not affect the result.
func FromDense(d *matrix.Dense) (*Matrix, error) {
	if d.Rows() != d.Cols() {
		return nil, fmt.Errorf("%w: %dx%d", ErrShape, d.Rows(), d.Cols())
	}
	m := &Matrix{m: d.Clone()}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// FromColumns builds an RR matrix from column vectors: cols[i][j] = θ_{j,i}.
func FromColumns(cols [][]float64) (*Matrix, error) {
	n := len(cols)
	if n == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrShape)
	}
	d := matrix.New(n, n)
	for i, col := range cols {
		if len(col) != n {
			return nil, fmt.Errorf("%w: column %d has %d entries, want %d", ErrShape, i, len(col), n)
		}
		d.SetCol(i, col)
	}
	return FromDense(d)
}

// NewScratchMatrix returns an n-category matrix intended as reusable storage
// for SetColumns: the evaluation hot path materializes one genome after
// another into the same matrix instead of allocating per genome. The initial
// contents are the totally-random matrix (every entry 1/n), so the value is
// valid even before the first SetColumns.
func NewScratchMatrix(n int) *Matrix {
	return TotallyRandom(n)
}

// SetColumns overwrites the matrix in place from column vectors
// (cols[i][j] = θ_{j,i}) and re-validates. On error the matrix contents are
// unspecified and must not be used until a successful SetColumns. The checks
// and error values match FromColumns.
func (m *Matrix) SetColumns(cols [][]float64) error {
	n := m.N()
	if len(cols) != n {
		return fmt.Errorf("%w: %d columns for %d categories", ErrShape, len(cols), n)
	}
	for i, col := range cols {
		if len(col) != n {
			return fmt.Errorf("%w: column %d has %d entries, want %d", ErrShape, i, len(col), n)
		}
		m.m.SetCol(i, col)
	}
	m.samplers.Store(nil)
	return m.Validate()
}

// Validate checks the RR invariants and returns ErrNotStochastic on failure.
func (m *Matrix) Validate() error {
	n := m.N()
	for i := 0; i < n; i++ {
		var sum float64
		for j := 0; j < n; j++ {
			v := m.m.At(j, i)
			if v < -stochasticTol || v > 1+stochasticTol || math.IsNaN(v) {
				return fmt.Errorf("%w: entry (%d,%d) = %v", ErrNotStochastic, j, i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > stochasticTol*float64(n) {
			return fmt.Errorf("%w: column %d sums to %v", ErrNotStochastic, i, sum)
		}
	}
	return nil
}

// N returns the number of categories.
func (m *Matrix) N() int { return m.m.Rows() }

// Theta returns θ_{j,i} = P(Y = c_j | X = c_i).
func (m *Matrix) Theta(j, i int) float64 { return m.m.At(j, i) }

// Column returns a copy of column i: the disguise distribution of original
// category c_i.
func (m *Matrix) Column(i int) []float64 { return m.m.Col(i) }

// Dense returns a copy of the underlying dense matrix.
func (m *Matrix) Dense() *matrix.Dense { return m.m.Clone() }

// DenseView returns the underlying dense matrix without copying. Callers
// must treat it as read-only; it is the zero-allocation access the
// Kronecker-factored joint metrics build their factor views from.
func (m *Matrix) DenseView() *matrix.Dense { return m.m }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix { return &Matrix{m: m.m.Clone()} }

// Equal reports element-wise equality within tol.
func (m *Matrix) Equal(other *Matrix, tol float64) bool {
	return other != nil && m.m.Equal(other.m, tol)
}

// String renders the matrix.
func (m *Matrix) String() string { return m.m.String() }

// DisguisedDistribution returns P* = M·P, the category distribution of the
// disguised data implied by original distribution p (Equation 1).
func (m *Matrix) DisguisedDistribution(p []float64) ([]float64, error) {
	if len(p) != m.N() {
		return nil, fmt.Errorf("%w: distribution of length %d for %d categories", ErrShape, len(p), m.N())
	}
	return m.m.MulVec(p)
}

// DisguisedDistributionInto computes P* = M·P into the caller-provided dst
// (length n, must not alias p) — the allocation-free form of
// DisguisedDistribution.
func (m *Matrix) DisguisedDistributionInto(dst, p []float64) error {
	if len(p) != m.N() {
		return fmt.Errorf("%w: distribution of length %d for %d categories", ErrShape, len(p), m.N())
	}
	return m.m.MulVecInto(dst, p)
}

// ThetaRow returns row j of the matrix — the vector (θ_{j,0}, …, θ_{j,n-1})
// of probabilities that each original category reports c_j — aliasing the
// matrix storage. Callers must treat the slice as read-only.
func (m *Matrix) ThetaRow(j int) []float64 { return m.m.RowView(j) }

// FactorizeInto recomputes f as the LU factorization of the matrix, reusing
// f's buffers — the allocation-free path behind Inverse. It returns
// ErrSingular for singular matrices.
func (m *Matrix) FactorizeInto(f *matrix.LU) error {
	if err := f.Factorize(m.m); err != nil {
		if errors.Is(err, matrix.ErrSingular) {
			return fmt.Errorf("%w: %v", ErrSingular, err)
		}
		return err
	}
	return nil
}

// Inverse returns M⁻¹ or ErrSingular.
func (m *Matrix) Inverse() (*matrix.Dense, error) {
	inv, err := m.m.Inverse()
	if err != nil {
		if errors.Is(err, matrix.ErrSingular) {
			return nil, fmt.Errorf("%w: %v", ErrSingular, err)
		}
		return nil, err
	}
	return inv, nil
}

// Invertible reports whether the inversion estimator is defined for m.
func (m *Matrix) Invertible() bool {
	_, err := matrix.Factorize(m.m)
	return err == nil && !math.IsInf(m.m.ConditionEstimate(), 1)
}

// Disguise applies randomized response to every record: each original
// category c_i is replaced by a category drawn from column i of M.
func (m *Matrix) Disguise(records []int, r *randx.Source) ([]int, error) {
	n := m.N()
	samplers, err := m.Samplers()
	if err != nil {
		return nil, err
	}
	out := make([]int, len(records))
	for k, rec := range records {
		if rec < 0 || rec >= n {
			return nil, fmt.Errorf("%w: record %d has category %d", ErrShape, k, rec)
		}
		out[k] = samplers[rec].Draw(r)
	}
	return out, nil
}

// Identity returns the n×n identity RR matrix (no disguise; the paper's M1).
func Identity(n int) *Matrix {
	m, err := FromDense(matrix.Identity(n))
	if err != nil {
		panic(fmt.Sprintf("rr: identity invalid: %v", err))
	}
	return m
}

// Compose returns the RR matrix equivalent to disguising first with inner
// and then disguising the result with outer: the matrix product outer·inner.
// Column-stochastic matrices are closed under multiplication, so the result
// is a valid RR matrix. By the data-processing inequality the composition
// never reveals more about X than either stage alone.
func Compose(outer, inner *Matrix) (*Matrix, error) {
	if outer.N() != inner.N() {
		return nil, fmt.Errorf("%w: composing %d and %d categories", ErrShape, outer.N(), inner.N())
	}
	prod, err := outer.m.Mul(inner.m)
	if err != nil {
		return nil, err
	}
	return FromDense(prod)
}

// TotallyRandom returns the matrix with every entry 1/n (the paper's M2):
// perfect privacy, zero utility. It is singular, so the inversion estimator
// is undefined for it.
func TotallyRandom(n int) *Matrix {
	d := matrix.New(n, n)
	v := 1 / float64(n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d.Set(j, i, v)
		}
	}
	m, err := FromDense(d)
	if err != nil {
		panic(fmt.Sprintf("rr: totally-random invalid: %v", err))
	}
	return m
}
