package rr

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"optrr/internal/randx"
)

// Scheme abstracts a randomized-response disguise mechanism so the layers
// above the matrix math — collectors, the collection service, the disguise
// SDK, mining — do not assume the dense n×n matrix representation. A scheme
// maps a private value from a category domain onto an encoded report in a
// (possibly much smaller) report space, and debiases aggregated report
// counts back into frequency estimates over the original domain.
//
// *Matrix is the dense scheme: report space == domain, disguise draws from
// the matrix column, estimation is the Theorem-1 inversion. The
// Count-Mean-Sketch scheme (internal/sketch) hashes a huge domain into a
// small hash range first, so its report space is O(hashes·hashRange),
// independent of the domain size.
type Scheme interface {
	// Kind identifies the scheme family on the wire (see RegisterScheme).
	Kind() string
	// Domain returns the original category domain size: private values are
	// integers in [0, Domain()).
	Domain() int
	// ReportSpace returns the size of the encoded report space: disguised
	// reports are integers in [0, ReportSpace()).
	ReportSpace() int
	// DisguiseValue disguises one private value into an encoded report,
	// drawing randomness from rng. The private value never appears in the
	// result except through the scheme's randomized channel.
	DisguiseValue(value int, rng *randx.Source) (int, error)
	// DisguiseBatchInto disguises records into dst (same length) using the
	// deterministic chunked schedule of BatchChunks: the output depends only
	// on (scheme, records, seed), never on the worker count.
	DisguiseBatchInto(dst, records []int, seed uint64, workers int) error
	// EstimateFrom debiases aggregated report counts (length ReportSpace())
	// into frequency estimates for the requested original categories; a nil
	// categories slice means the full domain, in order.
	EstimateFrom(counts []int, categories []int) ([]float64, error)
}

// DenseKind is the Kind of the dense matrix scheme.
const DenseKind = "dense"

// schemeEnvelope is the kind-tagged wire form of a Scheme, so a decoder can
// dispatch to the right codec without guessing from the payload shape.
type schemeEnvelope struct {
	Kind   string          `json:"kind"`
	Scheme json.RawMessage `json:"scheme"`
}

var (
	schemeCodecsMu sync.RWMutex
	schemeCodecs   = map[string]func(data []byte) (Scheme, error){}
)

// RegisterScheme registers the decoder for a scheme kind, used by
// UnmarshalScheme to revive kind-tagged envelopes. Packages implementing a
// Scheme register themselves in an init function; registering the same kind
// twice panics (it is a wiring bug, not a runtime condition).
func RegisterScheme(kind string, decode func(data []byte) (Scheme, error)) {
	if kind == "" || decode == nil {
		panic("rr: RegisterScheme needs a kind and a decoder")
	}
	schemeCodecsMu.Lock()
	defer schemeCodecsMu.Unlock()
	if _, dup := schemeCodecs[kind]; dup {
		panic(fmt.Sprintf("rr: scheme kind %q registered twice", kind))
	}
	schemeCodecs[kind] = decode
}

// SchemeKinds returns the registered scheme kinds, sorted.
func SchemeKinds() []string {
	schemeCodecsMu.RLock()
	defer schemeCodecsMu.RUnlock()
	out := make([]string, 0, len(schemeCodecs))
	for k := range schemeCodecs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// MarshalScheme serializes any Scheme into its kind-tagged envelope:
//
//	{"kind": "dense", "scheme": {...}}
//
// The payload is the scheme's own json.Marshaler form.
func MarshalScheme(s Scheme) ([]byte, error) {
	if s == nil {
		return nil, fmt.Errorf("rr: cannot marshal a nil scheme")
	}
	payload, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("rr: encoding %s scheme: %w", s.Kind(), err)
	}
	return json.Marshal(schemeEnvelope{Kind: s.Kind(), Scheme: payload})
}

// UnmarshalScheme revives a Scheme from its kind-tagged envelope, validating
// through the registered codec for its kind.
func UnmarshalScheme(data []byte) (Scheme, error) {
	var env schemeEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("rr: decoding scheme envelope: %w", err)
	}
	if env.Kind == "" {
		return nil, fmt.Errorf("rr: scheme envelope has no kind")
	}
	schemeCodecsMu.RLock()
	decode := schemeCodecs[env.Kind]
	schemeCodecsMu.RUnlock()
	if decode == nil {
		return nil, fmt.Errorf("rr: unknown scheme kind %q (registered: %v)", env.Kind, SchemeKinds())
	}
	s, err := decode(env.Scheme)
	if err != nil {
		return nil, fmt.Errorf("rr: decoding %s scheme: %w", env.Kind, err)
	}
	return s, nil
}

// SchemeVersion returns a short stable fingerprint of a scheme's canonical
// wire form — the value the collection service serves as the /v1/scheme
// ETag, so SDK clients can detect a hot-swapped scheme without re-downloading
// and re-parsing it.
func SchemeVersion(s Scheme) (string, error) {
	data, err := MarshalScheme(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8]), nil
}

func init() {
	RegisterScheme(DenseKind, func(data []byte) (Scheme, error) {
		m := new(Matrix)
		if err := m.UnmarshalJSON(data); err != nil {
			return nil, err
		}
		return m, nil
	})
}

// The dense scheme: *Matrix satisfies Scheme with report space == domain.
// DisguiseBatchInto is implemented in disguise.go; the methods here are thin
// views over the existing matrix operations, so the dense path stays
// bit-for-bit what it was before the abstraction existed.

// Kind returns DenseKind.
func (m *Matrix) Kind() string { return DenseKind }

// Domain returns the category domain size (== N()).
func (m *Matrix) Domain() int { return m.N() }

// ReportSpace returns the report space size: the dense scheme reports a
// category index, so it equals the domain.
func (m *Matrix) ReportSpace() int { return m.N() }

// DisguiseValue disguises one private value: a draw from column value of the
// matrix, through the cached per-column alias samplers.
func (m *Matrix) DisguiseValue(value int, rng *randx.Source) (int, error) {
	samplers, err := m.Samplers()
	if err != nil {
		return 0, err
	}
	if value < 0 || value >= len(samplers) {
		return 0, fmt.Errorf("%w: value %d of %d categories", ErrShape, value, len(samplers))
	}
	return samplers[value].Draw(rng), nil
}

// EstimateFrom debiases aggregated report counts via the Theorem-1 inversion
// estimator: counts are normalized into the empirical disguised distribution
// and solved back through the matrix. A nil categories slice returns the
// full domain estimate; otherwise the requested categories are selected from
// it.
func (m *Matrix) EstimateFrom(counts []int, categories []int) ([]float64, error) {
	n := m.N()
	if len(counts) != n {
		return nil, fmt.Errorf("%w: %d counts for %d categories", ErrShape, len(counts), n)
	}
	total := 0
	for k, c := range counts {
		if c < 0 {
			return nil, fmt.Errorf("%w: count[%d] = %d is negative", ErrShape, k, c)
		}
		total += c
	}
	if total == 0 {
		return nil, ErrEmptyData
	}
	pStar := make([]float64, n)
	inv := 1 / float64(total)
	for k, c := range counts {
		pStar[k] = float64(c) * inv
	}
	est, err := m.EstimateInversionFromDistribution(pStar)
	if err != nil {
		return nil, err
	}
	if categories == nil {
		return est, nil
	}
	out := make([]float64, len(categories))
	for i, x := range categories {
		if x < 0 || x >= n {
			return nil, fmt.Errorf("%w: category %d of %d", ErrShape, x, n)
		}
		out[i] = est[x]
	}
	return out, nil
}

// Samplers returns the per-column alias samplers of the matrix, built once
// and cached: every disguise path (Disguise, DisguiseBatchInto,
// DisguiseValue, collector.Respondent, the rrclient SDK) shares one table
// per matrix instead of rebuilding n alias tables per call site. SetColumns
// invalidates the cache, so optimizer scratch matrices stay correct. The
// returned slice and its samplers are immutable; callers must not modify it.
func (m *Matrix) Samplers() ([]*randx.Alias, error) {
	if p := m.samplers.Load(); p != nil {
		return *p, nil
	}
	n := m.N()
	samplers := make([]*randx.Alias, n)
	for i := 0; i < n; i++ {
		a, err := randx.NewAlias(m.Column(i))
		if err != nil {
			return nil, fmt.Errorf("rr: column %d: %w", i, err)
		}
		samplers[i] = a
	}
	// Concurrent builders race benignly: both tables are built from the same
	// columns, so whichever store wins serves identical draws.
	m.samplers.Store(&samplers)
	return samplers, nil
}
