package rr

import (
	"errors"
	"math"
	"runtime"
	"testing"

	"optrr/internal/randx"
)

// tupleRecords draws multi-attribute records with categories in range.
func tupleRecords(sizes []int, total int, seed uint64) [][]int {
	r := randx.New(seed)
	recs := make([][]int, total)
	for k := range recs {
		rec := make([]int, len(sizes))
		for d, n := range sizes {
			rec[d] = r.Intn(n)
		}
		recs[k] = rec
	}
	return recs
}

// mustTuple builds a Warner matrix per attribute size.
func mustTuple(t *testing.T, sizes []int, p float64) []*Matrix {
	t.Helper()
	ms := make([]*Matrix, len(sizes))
	for d, n := range sizes {
		m, err := Warner(n, p)
		if err != nil {
			t.Fatal(err)
		}
		ms[d] = m
	}
	return ms
}

// TestTupleDisguiseBatchDeterministicAcrossWorkers is the tuple kernel's
// contract: output depends only on (ms, records, seed), never on worker
// count, including totals straddling chunk boundaries.
func TestTupleDisguiseBatchDeterministicAcrossWorkers(t *testing.T) {
	sizes := []int{3, 5, 2}
	ms := mustTuple(t, sizes, 0.7)
	for _, total := range []int{1, disguiseChunk - 1, disguiseChunk + 1} {
		recs := tupleRecords(sizes, total, uint64(total))
		want, err := TupleDisguiseBatch(ms, recs, 42, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 3, 8, runtime.GOMAXPROCS(0)} {
			got, err := TupleDisguiseBatch(ms, recs, 42, w)
			if err != nil {
				t.Fatal(err)
			}
			for k := range want {
				for d := range want[k] {
					if got[k][d] != want[k][d] {
						t.Fatalf("total=%d workers=%d: record %d attr %d = %d, want %d",
							total, w, k, d, got[k][d], want[k][d])
					}
				}
			}
		}
	}
}

// TestTupleDisguiseBatchMatchesColumnwise pins the construction: attribute d
// of the tuple output equals a 1-D DisguiseBatch of column d under the d-th
// derived seed, so the tuple kernel adds no randomness of its own.
func TestTupleDisguiseBatchMatchesColumnwise(t *testing.T) {
	sizes := []int{4, 3}
	ms := mustTuple(t, sizes, 0.65)
	recs := tupleRecords(sizes, 1000, 3)
	got, err := TupleDisguiseBatch(ms, recs, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	seeds := tupleSeeds(99, len(sizes))
	for d, m := range ms {
		col := make([]int, len(recs))
		for k, rec := range recs {
			col[k] = rec[d]
		}
		want, err := m.DisguiseBatch(col, seeds[d], 1)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want {
			if got[k][d] != want[k] {
				t.Fatalf("attr %d record %d = %d, want columnwise %d", d, k, got[k][d], want[k])
			}
		}
	}
}

// TestTupleSeedsDistinct guards the per-attribute seed derivation against
// the symmetric (attribute, chunk) collision that StreamSeed reuse would
// reintroduce: sequential draws must all differ.
func TestTupleSeedsDistinct(t *testing.T) {
	seeds := tupleSeeds(7, 8)
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	again := tupleSeeds(7, 8)
	for d := range seeds {
		if again[d] != seeds[d] {
			t.Fatalf("seed derivation not deterministic at %d", d)
		}
	}
}

// TestTupleEstimateJointRecovers is the statistical round trip: disguise a
// large batch drawn from a known joint, estimate with the factored
// inversion, and land near the truth.
func TestTupleEstimateJointRecovers(t *testing.T) {
	sizes := []int{3, 4}
	ms := mustTuple(t, sizes, 0.75)
	cells := 12
	joint := make([]float64, cells)
	r := randx.New(17)
	sum := 0.0
	for i := range joint {
		joint[i] = 0.2 + r.Float64()
		sum += joint[i]
	}
	for i := range joint {
		joint[i] /= sum
	}
	const total = 400000
	recs := make([][]int, total)
	for k := range recs {
		u := r.Float64()
		idx := 0
		for acc := 0.0; idx < cells-1; idx++ {
			acc += joint[idx]
			if u < acc {
				break
			}
		}
		recs[k] = []int{idx / sizes[1], idx % sizes[1]}
	}
	disguised, err := TupleDisguiseBatch(ms, recs, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	est, err := TupleEstimateJoint(ms, disguised)
	if err != nil {
		t.Fatal(err)
	}
	if len(est) != cells {
		t.Fatalf("estimate has %d cells, want %d", len(est), cells)
	}
	esum := 0.0
	for i := range est {
		if math.Abs(est[i]-joint[i]) > 0.02 {
			t.Fatalf("cell %d: estimate %.4f, truth %.4f", i, est[i], joint[i])
		}
		esum += est[i]
	}
	if math.Abs(esum-1) > 1e-9 {
		t.Fatalf("estimate sums to %v", esum)
	}
}

// TestTupleEstimateJointIdentity pins the estimator with identity matrices:
// the estimate must equal the empirical joint of the input exactly.
func TestTupleEstimateJointIdentity(t *testing.T) {
	ms := []*Matrix{Identity(2), Identity(3)}
	recs := [][]int{{0, 0}, {0, 2}, {1, 1}, {1, 1}}
	est, err := TupleEstimateJoint(ms, recs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0, 0.25, 0, 0.5, 0}
	for i := range want {
		if est[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, est[i], want[i])
		}
	}
}

// TestTupleErrors walks the validation surface of both tuple entry points.
func TestTupleErrors(t *testing.T) {
	ms := mustTuple(t, []int{3, 2}, 0.7)
	if _, err := TupleDisguiseBatch(nil, [][]int{{0}}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("empty tuple: %v", err)
	}
	if _, err := TupleDisguiseBatch([]*Matrix{ms[0], nil}, [][]int{{0, 0}}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("nil matrix: %v", err)
	}
	if _, err := TupleDisguiseBatch(ms, [][]int{{0}}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("short record: %v", err)
	}
	if _, err := TupleDisguiseBatch(ms, [][]int{{0, 5}}, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("out-of-range category: %v", err)
	}
	dst := [][]int{{0, 0}, {0, 0}}
	if err := TupleDisguiseBatchInto(dst, [][]int{{0, 0}}, ms, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("row mismatch: %v", err)
	}
	if err := TupleDisguiseBatchInto([][]int{{0}}, [][]int{{0, 0}}, ms, 1, 1); !errors.Is(err, ErrShape) {
		t.Fatalf("short dst row: %v", err)
	}
	if _, err := TupleEstimateJoint(ms, nil); !errors.Is(err, ErrEmptyData) {
		t.Fatalf("empty data: %v", err)
	}
	if _, err := TupleEstimateJoint(ms, [][]int{{0, 3}}); !errors.Is(err, ErrShape) {
		t.Fatalf("estimate out-of-range: %v", err)
	}
	if _, err := TupleEstimateJoint([]*Matrix{ms[0], TotallyRandom(2)}, [][]int{{0, 0}}); !errors.Is(err, ErrSingular) {
		t.Fatalf("singular factor: %v", err)
	}
}

// TestTupleDisguiseBatchEmpty mirrors DisguiseBatch: zero records is legal
// and yields an empty output.
func TestTupleDisguiseBatchEmpty(t *testing.T) {
	ms := mustTuple(t, []int{2, 2}, 0.8)
	got, err := TupleDisguiseBatch(ms, nil, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d rows", len(got))
	}
}
