package collector

import (
	"errors"
	"math"
	"sync"
	"testing"

	"optrr/internal/obs"
	"optrr/internal/randx"
	"optrr/internal/rr"
	"optrr/internal/sketch"
)

func testCMS(t testing.TB, domain, hashes, hashRange int) *sketch.CMSScheme {
	t.Helper()
	s, err := sketch.NewKRR(domain, hashes, hashRange, 5, 42)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sketchReports disguises a skewed record stream into encoded reports.
func sketchReports(t testing.TB, s *sketch.CMSScheme, total int, seed uint64) []int {
	t.Helper()
	rng := randx.New(seed)
	records := make([]int, total)
	for i := range records {
		if rng.Intn(4) != 0 {
			records[i] = rng.Intn(5) // 75% of mass on 5 heavy categories
		} else {
			records[i] = rng.Intn(s.Domain())
		}
	}
	reports := make([]int, total)
	if err := s.DisguiseBatchInto(reports, records, seed, 0); err != nil {
		t.Fatal(err)
	}
	return reports
}

func TestSketchCollectorIngestAndCount(t *testing.T) {
	s := testCMS(t, 10000, 8, 64)
	c := NewSketch(s, 4)
	if c.Categories() != 10000 || c.ReportSpace() != 8*64 {
		t.Fatalf("Categories/ReportSpace = %d/%d", c.Categories(), c.ReportSpace())
	}
	reports := sketchReports(t, s, 5000, 1)
	for _, r := range reports[:2500] {
		if err := c.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.IngestBatch(reports[2500:]); err != nil {
		t.Fatal(err)
	}
	if got := c.Count(); got != 5000 {
		t.Fatalf("Count = %d, want 5000", got)
	}
	counts := c.Counts()
	if len(counts) != c.ReportSpace() {
		t.Fatalf("Counts has %d entries, want %d", len(counts), c.ReportSpace())
	}
	sum := 0
	for _, v := range counts {
		sum += v
	}
	if sum != 5000 {
		t.Fatalf("counts sum to %d, want 5000", sum)
	}
}

func TestSketchCollectorRejectsBadReports(t *testing.T) {
	c := NewSketch(testCMS(t, 1000, 4, 16), 2)
	if err := c.Ingest(-1); !errors.Is(err, ErrBadReport) {
		t.Fatalf("Ingest(-1) err = %v, want ErrBadReport", err)
	}
	if err := c.Ingest(c.ReportSpace()); !errors.Is(err, ErrBadReport) {
		t.Fatalf("Ingest(space) err = %v, want ErrBadReport", err)
	}
	if err := c.IngestBatch([]int{0, 1, c.ReportSpace()}); !errors.Is(err, ErrBadReport) {
		t.Fatalf("IngestBatch err = %v, want ErrBadReport", err)
	}
	if c.Count() != 0 {
		t.Fatalf("failed batch mutated state: count %d", c.Count())
	}
}

func TestSketchCollectorEmptyQueries(t *testing.T) {
	c := NewSketch(testCMS(t, 1000, 4, 16), 2)
	if _, err := c.Estimate(0); !errors.Is(err, ErrNoReports) {
		t.Fatalf("Estimate on empty err = %v, want ErrNoReports", err)
	}
	if _, err := c.HeavyHitters(0.01, 10); !errors.Is(err, ErrNoReports) {
		t.Fatalf("HeavyHitters on empty err = %v, want ErrNoReports", err)
	}
}

func TestSketchCollectorEstimateAndHeavyHitters(t *testing.T) {
	s := testCMS(t, 10000, 16, 128)
	c := NewSketch(s, 4)
	if err := c.IngestBatch(sketchReports(t, s, 200000, 7)); err != nil {
		t.Fatal(err)
	}
	// The 5 heavy categories carry ~15% each; everything else ~0.25%.
	ests, err := c.Estimate(0, 1, 2, 3, 4, 9999)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if math.Abs(ests[i]-0.15) > 0.05 {
			t.Errorf("heavy category %d estimate %.4f, want ≈ 0.15", i, ests[i])
		}
	}
	if math.Abs(ests[5]) > 0.03 {
		t.Errorf("light category estimate %.4f, want ≈ 0", ests[5])
	}
	hits, err := c.HeavyHitters(0.08, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, h := range hits {
		found[h.Category] = true
	}
	for x := 0; x < 5; x++ {
		if !found[x] {
			t.Errorf("heavy category %d not in heavy hitters %v", x, hits)
		}
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Estimate > hits[i-1].Estimate {
			t.Fatalf("heavy hitters not sorted: %v", hits)
		}
	}
	top, err := c.HeavyHitters(0.08, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 2 {
		t.Fatalf("limit 2 returned %d hits", len(top))
	}
}

func TestSketchCollectorMerge(t *testing.T) {
	s := testCMS(t, 1000, 4, 16)
	a, b := NewSketch(s, 2), NewSketch(s, 2)
	ra := sketchReports(t, s, 3000, 1)
	rb := sketchReports(t, s, 2000, 2)
	if err := a.IngestBatch(ra); err != nil {
		t.Fatal(err)
	}
	if err := b.IngestBatch(rb); err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if got := a.Count(); got != 5000 {
		t.Fatalf("merged count %d, want 5000", got)
	}
	// Different scheme (different hash seed) must be refused.
	other, err := sketch.NewKRR(1000, 4, 16, 5, 43)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(NewSketch(other, 2)); err == nil {
		t.Fatal("merge across different schemes accepted")
	}
}

func TestSketchCollectorSnapshotRoundTrip(t *testing.T) {
	s := testCMS(t, 10000, 8, 64)
	c := NewSketch(s, 4)
	if err := c.IngestBatch(sketchReports(t, s, 50000, 3)); err != nil {
		t.Fatal(err)
	}
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := RestoreSketch(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != c.Count() {
		t.Fatalf("restored count %d, want %d", back.Count(), c.Count())
	}
	want, err := c.Estimate(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Estimate(0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("restored estimate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSketchCollectorRestoreRejectsCorrupt(t *testing.T) {
	s := testCMS(t, 1000, 4, 16)
	c := NewSketch(s, 2)
	if err := c.IngestBatch(sketchReports(t, s, 100, 1)); err != nil {
		t.Fatal(err)
	}
	good, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"not json":      []byte("{"),
		"no scheme":     []byte(`{"counts":[1,2]}`),
		"bad scheme":    []byte(`{"scheme":{"kind":"nope","scheme":{}},"counts":[]}`),
		"short counts":  []byte(`{"scheme":` + string(schemeEnv(t, s)) + `,"counts":[1,2,3]}`),
		"negative":      corrupt(t, good, `"counts":[`, `"counts":[-1,`),
		"total mangled": corrupt(t, good, `"total":100`, `"total":101`),
	}
	for name, data := range cases {
		if _, err := RestoreSketch(data, 2); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: err = %v, want ErrBadSnapshot", name, err)
		}
	}
}

func schemeEnv(t *testing.T, s rr.Scheme) []byte {
	t.Helper()
	env, err := rr.MarshalScheme(s)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func corrupt(t *testing.T, data []byte, old, new string) []byte {
	t.Helper()
	mangled := []byte(replaceFirst(string(data), old, new))
	if string(mangled) == string(data) {
		t.Fatalf("corruption %q not applied", new)
	}
	return mangled
}

func replaceFirst(s, old, new string) string {
	for i := 0; i+len(old) <= len(s); i++ {
		if s[i:i+len(old)] == old {
			return s[:i] + new + s[i+len(old):]
		}
	}
	return s
}

// TestSketchCollectorConcurrentIngest drives single reports, batches, and
// merges from many goroutines; the total and the per-query consistency must
// hold under -race at any -cpu.
func TestSketchCollectorConcurrentIngest(t *testing.T) {
	s := testCMS(t, 10000, 8, 64)
	c := NewSketch(s, 8)
	c.Instrument(nil, obs.NewRegistry())
	const (
		workers    = 8
		perWorker  = 2000
		batchSize  = 100
		mergeCount = 500
	)
	side := NewSketch(s, 2)
	if err := side.IngestBatch(sketchReports(t, s, mergeCount, 99)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			reports := sketchReports(t, s, perWorker, uint64(w+1))
			for i := 0; i < perWorker; i += 2 * batchSize {
				for _, r := range reports[i : i+batchSize] {
					if err := c.Ingest(r); err != nil {
						t.Error(err)
						return
					}
				}
				if err := c.IngestBatch(reports[i+batchSize : i+2*batchSize]); err != nil {
					t.Error(err)
					return
				}
				// Interleaved consistent queries must always see whole batches.
				if n := c.Count(); n%1 != 0 {
					t.Error("impossible")
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.Merge(side); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	if got, want := c.Count(), workers*perWorker+mergeCount; got != want {
		t.Fatalf("count %d, want %d", got, want)
	}
}

// TestSketchCollectorShardedMatchesSerial: the striped fold must equal a
// serial tally of the same reports.
func TestSketchCollectorShardedMatchesSerial(t *testing.T) {
	s := testCMS(t, 5000, 8, 32)
	reports := sketchReports(t, s, 30000, 4)
	c := NewSketch(s, 8)
	serial := make([]int, s.ReportSpace())
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		lo := w * 5000
		wg.Add(1)
		go func(chunk []int) {
			defer wg.Done()
			for _, r := range chunk {
				if err := c.Ingest(r); err != nil {
					t.Error(err)
					return
				}
			}
		}(reports[lo : lo+5000])
	}
	for _, r := range reports {
		serial[r]++
	}
	wg.Wait()
	got := c.Counts()
	for k := range serial {
		if got[k] != serial[k] {
			t.Fatalf("cell %d: sharded %d, serial %d", k, got[k], serial[k])
		}
	}
}

func BenchmarkSketchIngest(b *testing.B) {
	s := testCMS(b, 100000, 16, 256)
	c := NewSketch(s, 0)
	reports := sketchReports(b, s, 8192, 1)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if err := c.Ingest(reports[i&8191]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

func BenchmarkHeavyHitters(b *testing.B) {
	s := testCMS(b, 100000, 16, 256)
	c := NewSketch(s, 0)
	if err := c.IngestBatch(sketchReports(b, s, 100000, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.HeavyHitters(0.05, 10); err != nil {
			b.Fatal(err)
		}
	}
}
