package collector

import (
	"io"
	"sync"
	"testing"

	"optrr/internal/obs"
	"optrr/internal/randx"
)

// TestSafeCollectorConcurrentIngestAndSummary exercises the concurrency
// claim under the race detector (ci.sh runs this package with -race):
// ingesting goroutines (single reports and batches) race against dedicated
// query goroutines hammering Summary/Snapshot, MarginOfError,
// ReportsForMargin and Count, with full instrumentation attached so the
// recorder and registry paths are raced too.
func TestSafeCollectorConcurrentIngestAndSummary(t *testing.T) {
	m := mustWarner(t, 5, 0.75)
	s := NewSafe(m)
	reg := obs.NewRegistry()
	s.Instrument(obs.NewJSONL(io.Discard), reg)

	const (
		ingesters = 4
		batchers  = 2
		queriers  = 3
		each      = 2000
		batchSize = 50
	)
	var writers, wg sync.WaitGroup
	for w := 0; w < ingesters; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := randx.New(seed)
			for i := 0; i < each; i++ {
				if err := s.Ingest(rng.Intn(5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w + 1))
	}
	for w := 0; w < batchers; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := randx.New(seed)
			for i := 0; i < each/batchSize; i++ {
				batch := make([]int, batchSize)
				for j := range batch {
					batch[j] = rng.Intn(5)
				}
				if err := s.IngestBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(100 + w))
	}
	done := make(chan struct{})
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				if sum, err := s.Snapshot(1.96); err == nil {
					// A consistent point-in-time view: the estimate is a
					// distribution whenever any reports are in.
					var total float64
					for _, v := range sum.Estimate {
						total += v
					}
					if total < 0.999 || total > 1.001 {
						t.Errorf("estimate sums to %v at %d reports", total, sum.Reports)
						return
					}
				} else if err != ErrNoReports {
					t.Error(err)
					return
				}
				if _, err := s.MarginOfError(1.96); err != nil && err != ErrNoReports {
					t.Error(err)
					return
				}
				if _, err := s.ReportsForMargin(0.01, 1.96); err != nil && err != ErrNoReports {
					t.Error(err)
					return
				}
				s.Count()
			}
		}()
	}

	// Let the queriers race the writers for the writers' whole lifetime,
	// then stop them and drain.
	want := ingesters*each + batchers*(each/batchSize)*batchSize
	writers.Wait()
	close(done)
	wg.Wait()

	if got := s.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got := reg.Counter("collector.reports").Value(); got != int64(want) {
		t.Fatalf("collector.reports = %d, want %d", got, want)
	}
	if got := reg.Counter("collector.batches").Value(); got != int64(batchers*(each/batchSize)) {
		t.Fatalf("collector.batches = %d", got)
	}
	var perCat int64
	for k := 0; k < 5; k++ {
		perCat += reg.Counter("collector.reports.cat" + string(rune('0'+k))).Value()
	}
	if perCat != int64(want) {
		t.Fatalf("per-category counters sum to %d, want %d", perCat, want)
	}
}

// TestShardedCollectorConcurrentIngestAndSummary mirrors the SafeCollector
// race test for the striped variant, and additionally races Merge and the
// JSON snapshot against the writers: consistent queries must always see a
// whole number of reports and a valid distribution.
func TestShardedCollectorConcurrentIngestAndSummary(t *testing.T) {
	m := mustWarner(t, 5, 0.75)
	s := NewSharded(m, 8)
	reg := obs.NewRegistry()
	s.Instrument(obs.NewJSONL(io.Discard), reg)

	const (
		ingesters = 4
		batchers  = 2
		queriers  = 3
		each      = 2000
		batchSize = 50
	)
	var writers, wg sync.WaitGroup
	for w := 0; w < ingesters; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := randx.New(seed)
			for i := 0; i < each; i++ {
				if err := s.Ingest(rng.Intn(5)); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(w + 1))
	}
	for w := 0; w < batchers; w++ {
		writers.Add(1)
		go func(seed uint64) {
			defer writers.Done()
			rng := randx.New(seed)
			for i := 0; i < each/batchSize; i++ {
				batch := make([]int, batchSize)
				for j := range batch {
					batch[j] = rng.Intn(5)
				}
				if err := s.IngestBatch(batch); err != nil {
					t.Error(err)
					return
				}
			}
		}(uint64(100 + w))
	}
	done := make(chan struct{})
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sink := NewSharded(m, 2)
			for {
				select {
				case <-done:
					return
				default:
				}
				if sum, err := s.Snapshot(1.96); err == nil {
					var total float64
					for _, v := range sum.Estimate {
						total += v
					}
					if total < 0.999 || total > 1.001 {
						t.Errorf("estimate sums to %v at %d reports", total, sum.Reports)
						return
					}
				} else if err != ErrNoReports {
					t.Error(err)
					return
				}
				if _, err := s.MarginOfError(1.96); err != nil && err != ErrNoReports {
					t.Error(err)
					return
				}
				if _, err := s.ReportsForMargin(0.01, 1.96); err != nil && err != ErrNoReports {
					t.Error(err)
					return
				}
				if _, err := s.MarshalJSON(); err != nil {
					t.Error(err)
					return
				}
				if err := sink.Merge(s); err != nil {
					t.Error(err)
					return
				}
				s.Count()
			}
		}()
	}

	want := ingesters*each + batchers*(each/batchSize)*batchSize
	writers.Wait()
	close(done)
	wg.Wait()

	if got := s.Count(); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got := reg.Counter("collector.reports").Value(); got != int64(want) {
		t.Fatalf("collector.reports = %d, want %d", got, want)
	}
	if got := reg.Counter("collector.batches").Value(); got != int64(batchers*(each/batchSize)) {
		t.Fatalf("collector.batches = %d", got)
	}
	var perCat int64
	for k := 0; k < 5; k++ {
		perCat += reg.Counter("collector.reports.cat" + string(rune('0'+k))).Value()
	}
	if perCat != int64(want) {
		t.Fatalf("per-category counters sum to %d, want %d", perCat, want)
	}
}
