package collector

import "fmt"

// Writer is a per-goroutine ingestion front for a ShardedCollector: reports
// accumulate in a goroutine-local per-category buffer and flush to the
// collector's shards in batches, so a high-rate ingester pays one shard
// mutex acquisition per flushEvery reports instead of one shared-memory
// write per report. Each Writer is pinned to one shard at construction
// (round-robin), so a pool of Writers spreads across shards without any
// per-report cursor traffic.
//
// A Writer is NOT safe for concurrent use — that is the point; give each
// ingesting goroutine its own. Buffered reports are invisible to queries
// until they flush, and a flushed batch lands atomically exactly like
// IngestBatch.
//
// Lifecycle: the owning goroutine must call Close before returning — a
// Writer that is dropped with buffered reports silently loses them, which is
// exactly the bug class a long-lived server hits when a connection handler
// exits early. Close flushes and then rejects further ingestion with
// ErrWriterClosed; Close and Flush are both idempotent, so "defer w.Close()"
// plus explicit consistency-point flushes compose safely. On any flush
// error the buffer is left intact (nothing dropped, nothing double-counted)
// and the flush can simply be retried.
type Writer struct {
	c       *ShardedCollector
	sh      *shard
	pending []int // per-category buffered counts
	n       int   // buffered reports
	limit   int   // flush threshold
	closed  bool
}

// NewWriter returns a buffered writer pinned to the next shard in
// round-robin order. flushEvery <= 0 picks a default of 256 reports per
// flush.
func (c *ShardedCollector) NewWriter(flushEvery int) *Writer {
	if flushEvery <= 0 {
		flushEvery = 256
	}
	idx := int(c.cursor.Add(1)-1) & (len(c.set.shards) - 1)
	return &Writer{
		c:       c,
		sh:      &c.set.shards[idx],
		pending: make([]int, c.m.N()),
		limit:   flushEvery,
	}
}

// Ingest buffers one disguised report, flushing when the buffer reaches the
// writer's threshold. Validation happens here, so a bad report is reported
// immediately and never contaminates a flush. A returned flush error means
// the report (and the rest of the buffer) is still buffered, not lost.
func (w *Writer) Ingest(report int) error {
	// Close truncates pending to length 0, so a closed writer funnels every
	// report into this cold branch — the hot path pays no closed check.
	if report < 0 || report >= len(w.pending) {
		if w.closed {
			return ErrWriterClosed
		}
		w.c.ins.observeBad()
		return fmt.Errorf("%w: %d of %d categories", ErrBadReport, report, len(w.pending))
	}
	w.pending[report]++
	w.n++
	w.c.ins.observeIngest(report)
	if w.n >= w.limit {
		return w.Flush()
	}
	return nil
}

// Buffered returns the number of reports waiting in the local buffer.
func (w *Writer) Buffered() int { return w.n }

// Flush lands the buffered reports on the writer's shard as one atomic
// batch. The buffer is cleared only after the batch has landed, so an error
// leaves every buffered report in place for a retry — a failed flush never
// drops or double-counts. A flush of an empty buffer (including any flush
// after Close, which drains the buffer) is a no-op.
func (w *Writer) Flush() error {
	if w.n == 0 {
		return nil
	}
	w.sh.mu.Lock()
	for k, v := range w.pending {
		if v != 0 {
			w.sh.counts[k].Add(int64(v))
		}
	}
	w.sh.mu.Unlock()
	flushed := w.n
	for k := range w.pending {
		w.pending[k] = 0
	}
	w.n = 0
	if w.c.ins != nil {
		w.c.ins.observeBatch(flushed, w.c.Count())
	}
	return nil
}

// Close flushes any buffered reports and retires the writer: subsequent
// Ingest calls return ErrWriterClosed. Closing an already-closed writer is a
// no-op. If the final flush fails the writer stays open with its buffer
// intact so the close can be retried without losing reports.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	if err := w.Flush(); err != nil {
		return err
	}
	w.closed = true
	w.pending = w.pending[:0]
	return nil
}
