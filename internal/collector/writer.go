package collector

import "fmt"

// Writer is a per-goroutine ingestion front for a ShardedCollector: reports
// accumulate in a goroutine-local per-category buffer and flush to the
// collector's shards in batches, so a high-rate ingester pays one shard
// mutex acquisition per flushEvery reports instead of one shared-memory
// write per report. Each Writer is pinned to one shard at construction
// (round-robin), so a pool of Writers spreads across shards without any
// per-report cursor traffic.
//
// A Writer is NOT safe for concurrent use — that is the point; give each
// ingesting goroutine its own. Buffered reports are invisible to queries
// until Flush, and a flushed batch lands atomically exactly like
// IngestBatch. Call Flush when the stream ends or a consistency point is
// needed; dropping a Writer without flushing drops its buffered reports.
type Writer struct {
	c       *ShardedCollector
	sh      *shard
	pending []int // per-category buffered counts
	n       int   // buffered reports
	limit   int   // flush threshold
}

// NewWriter returns a buffered writer pinned to the next shard in
// round-robin order. flushEvery <= 0 picks a default of 256 reports per
// flush.
func (c *ShardedCollector) NewWriter(flushEvery int) *Writer {
	if flushEvery <= 0 {
		flushEvery = 256
	}
	idx := int(c.cursor.Add(1)-1) & (len(c.shards) - 1)
	return &Writer{
		c:       c,
		sh:      &c.shards[idx],
		pending: make([]int, c.m.N()),
		limit:   flushEvery,
	}
}

// Ingest buffers one disguised report, flushing when the buffer reaches the
// writer's threshold. Validation happens here, so a bad report is reported
// immediately and never contaminates a flush.
func (w *Writer) Ingest(report int) error {
	if report < 0 || report >= len(w.pending) {
		w.c.ins.observeBad()
		return fmt.Errorf("%w: %d of %d categories", ErrBadReport, report, len(w.pending))
	}
	w.pending[report]++
	w.n++
	w.c.ins.observeIngest(report)
	if w.n >= w.limit {
		w.Flush()
	}
	return nil
}

// Buffered returns the number of reports waiting in the local buffer.
func (w *Writer) Buffered() int { return w.n }

// Flush lands the buffered reports on the writer's shard as one atomic
// batch. A flush of an empty buffer is a no-op.
func (w *Writer) Flush() {
	if w.n == 0 {
		return
	}
	w.sh.mu.Lock()
	for k, v := range w.pending {
		if v != 0 {
			w.sh.counts[k].Add(int64(v))
		}
	}
	w.sh.mu.Unlock()
	flushed := w.n
	for k := range w.pending {
		w.pending[k] = 0
	}
	w.n = 0
	if w.c.ins != nil {
		w.c.ins.observeBatch(flushed, w.c.Count())
	}
}
