package collector

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"optrr/internal/randx"
)

// TestSnapshotCarriesTotal: the crash-recovery wire form records the total
// redundantly so a mangled counts array is detectable.
func TestSnapshotCarriesTotal(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 2)
	for i := 0; i < 30; i++ {
		if err := c.Ingest(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"total":30`) {
		t.Fatalf("snapshot missing total: %s", data)
	}
	restored, err := RestoreSharded(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != 30 {
		t.Fatalf("restored count = %d, want 30", restored.Count())
	}
}

// TestRestoreShardedRejectsCorruptSnapshots: every corruption class a
// long-lived server can meet on disk — truncated JSON, a total that
// disagrees with the counts, counts mangled under an intact total, negative
// counts — is rejected with the typed ErrBadSnapshot instead of silently
// poisoning every subsequent Estimate.
func TestRestoreShardedRejectsCorruptSnapshots(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 2)
	rng := randx.New(5)
	for i := 0; i < 300; i++ {
		if err := c.Ingest(rng.Intn(3)); err != nil {
			t.Fatal(err)
		}
	}
	good, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		name string
		data string
	}{
		{"truncated file", string(good[:len(good)/2])},
		{"total != sum", strings.Replace(string(good), `"total":300`, `"total":299`, 1)},
		{"counts mangled under intact total",
			strings.Replace(string(good), `"counts":[`, `"counts":[1000000,`, 1)},
		{"negative count with matching total",
			`{"matrix":{"categories":2,"columns":[[0.8,0.2],[0.2,0.8]]},"counts":[3,-1],"total":2}`},
		{"wrong category count vs matrix",
			`{"matrix":{"categories":2,"columns":[[0.8,0.2],[0.2,0.8]]},"counts":[1,2,3],"total":6}`},
		{"no matrix", `{"counts":[1,2],"total":3}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// "counts mangled" keeps the declared shape only for n=2 inputs;
			// for the marshalled n=3 snapshot it both breaks the shape and
			// the total — either way it must be ErrBadSnapshot.
			if _, err := RestoreSharded([]byte(tc.data), 2); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("err = %v, want ErrBadSnapshot", err)
			}
		})
	}

	// Legacy snapshots (written before the total field existed) still
	// restore: the check is opt-in on presence.
	legacy := `{"matrix":{"categories":2,"columns":[[0.8,0.2],[0.2,0.8]]},"counts":[4,6]}`
	restored, err := RestoreSharded([]byte(legacy), 2)
	if err != nil {
		t.Fatalf("legacy snapshot rejected: %v", err)
	}
	if restored.Count() != 10 {
		t.Fatalf("legacy restore count = %d, want 10", restored.Count())
	}
}

// TestWriterCloseLifecycle pins the tightened Writer contract: Close flushes
// the buffer, further ingestion is refused with ErrWriterClosed (and does
// not touch the buffer or the collector), and Close/Flush are idempotent.
func TestWriterCloseLifecycle(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 2)
	w := c.NewWriter(1000)
	for i := 0; i < 7; i++ {
		if err := w.Ingest(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Count(); got != 0 {
		t.Fatalf("buffered reports visible before close: count = %d", got)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.Count(); got != 7 {
		t.Fatalf("count = %d after close, want 7 (close must flush)", got)
	}
	if got := w.Buffered(); got != 0 {
		t.Fatalf("Buffered() = %d after close, want 0", got)
	}

	if err := w.Ingest(1); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("ingest after close err = %v, want ErrWriterClosed", err)
	}
	if got, want := c.Count(), 7; got != want {
		t.Fatalf("rejected ingest reached the collector: count = %d, want %d", got, want)
	}
	if got := w.Buffered(); got != 0 {
		t.Fatalf("rejected ingest buffered: Buffered() = %d, want 0", got)
	}

	// Idempotence: double Close and post-close Flush are no-ops.
	if err := w.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("post-close Flush = %v, want nil", err)
	}
	if got := c.Count(); got != 7 {
		t.Fatalf("idempotent close/flush changed counts: %d, want 7", got)
	}
}
