// Package collector simulates the deployment scenario that motivates the
// paper (Section I): individuals hold private categorical values, each
// applies randomized response locally, and a central collector aggregates
// the disguised reports — never seeing an original value — while maintaining
// a running reconstruction of the population distribution with
// distribution-free error bars from the closed-form variance of Theorem 6.
package collector

import (
	"errors"
	"fmt"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// Collector errors.
var (
	// ErrBadReport reports a disguised value outside the category domain.
	ErrBadReport = errors.New("collector: report out of category range")
	// ErrNoReports reports an estimate request before any ingestion.
	ErrNoReports = errors.New("collector: no reports ingested")
	// ErrBadSnapshot reports a corrupted or inconsistent crash-recovery
	// snapshot: RestoreSharded refuses it rather than poisoning every
	// subsequent Estimate. Long-lived servers should treat it as "start
	// fresh and alert", not as fatal.
	ErrBadSnapshot = errors.New("collector: invalid snapshot")
	// ErrBadMargin reports a margin target that is not a positive finite
	// number, for which "reports needed" has no meaning.
	ErrBadMargin = errors.New("collector: margin must be a positive finite number")
	// ErrWriterClosed reports ingestion through a Writer after Close.
	ErrWriterClosed = errors.New("collector: writer is closed")
)

// Collector accumulates disguised reports for one attribute and answers
// distribution queries at any point during collection. It is not safe for
// concurrent use; wrap it with a mutex (SafeCollector) or stripe it
// (ShardedCollector) if multiple goroutines ingest.
//
// Instrument attaches live metrics and structured trace events; a bare
// collector carries no instrumentation and pays nothing for the hooks.
type Collector struct {
	m      *rr.Matrix
	counts []int
	total  int
	ins    *instrumentation
	// sv caches the LU factorization (and inverse) of m, computed once at
	// construction: queries are triangular solves, not refactorizations.
	sv *solver
}

// New returns a collector for reports disguised with the given matrix. The
// matrix is factorized once here; a singular matrix is accepted (ingestion
// still works) but every estimate query will return rr.ErrSingular.
func New(m *rr.Matrix) *Collector {
	return &Collector{m: m, counts: make([]int, m.N()), sv: newSolver(m)}
}

// Categories returns the attribute domain size.
func (c *Collector) Categories() int { return len(c.counts) }

// Count returns the number of reports ingested so far.
func (c *Collector) Count() int { return c.total }

// Counts returns a copy of the per-category report counts.
func (c *Collector) Counts() []int {
	out := make([]int, len(c.counts))
	copy(out, c.counts)
	return out
}

// Ingest adds one disguised report.
func (c *Collector) Ingest(report int) error {
	if report < 0 || report >= len(c.counts) {
		c.ins.observeBad()
		return fmt.Errorf("%w: %d of %d categories", ErrBadReport, report, len(c.counts))
	}
	c.counts[report]++
	c.total++
	c.ins.observeIngest(report)
	return nil
}

// IngestBatch adds many reports; on error the collector state is unchanged.
func (c *Collector) IngestBatch(reports []int) error {
	for _, r := range reports {
		if r < 0 || r >= len(c.counts) {
			c.ins.observeBad()
			return fmt.Errorf("%w: %d of %d categories", ErrBadReport, r, len(c.counts))
		}
	}
	for _, r := range reports {
		c.counts[r]++
		c.ins.observeIngest(r)
	}
	c.total += len(reports)
	c.ins.observeBatch(len(reports), c.total)
	return nil
}

// Disguised returns the empirical distribution of the disguised reports.
func (c *Collector) Disguised() ([]float64, error) {
	if c.total == 0 {
		return nil, ErrNoReports
	}
	out := make([]float64, len(c.counts))
	inv := 1 / float64(c.total)
	for i, n := range c.counts {
		out[i] = float64(n) * inv
	}
	return out, nil
}

// Estimate reconstructs the original distribution from the reports ingested
// so far (inversion estimator, Theorem 1) through the cached factorization.
// Components may fall slightly outside [0, 1] for small samples; see
// EstimateClipped.
func (c *Collector) Estimate() ([]float64, error) {
	pStar, err := c.Disguised()
	if err != nil {
		return nil, err
	}
	return c.sv.estimate(pStar)
}

// EstimateClipped is Estimate projected onto the probability simplex.
func (c *Collector) EstimateClipped() ([]float64, error) {
	est, err := c.Estimate()
	if err != nil {
		return nil, err
	}
	return rr.Clip(est), nil
}

// Summary is a point-in-time view of the collection.
type Summary struct {
	// Reports is the number of reports behind the estimate.
	Reports int
	// Disguised is the empirical disguised distribution.
	Disguised []float64
	// Estimate is the reconstructed original distribution (clipped).
	Estimate []float64
	// HalfWidth contains per-category half-widths of approximate normal
	// confidence intervals at the z used for the snapshot.
	HalfWidth []float64
	// Z is the normal quantile the half-widths were computed at.
	Z float64
}

// Snapshot returns the current reconstruction with z-quantile confidence
// half-widths (z = 1.96 for ~95%). The variance comes from Theorem 6
// evaluated at the clipped estimate, through the inverse cached at
// construction.
func (c *Collector) Snapshot(z float64) (Summary, error) {
	s, err := summarize(c.sv, c.counts, c.total, z)
	if err != nil {
		return Summary{}, err
	}
	c.ins.observeSnapshot(s)
	return s, nil
}

// MarginOfError returns the largest confidence half-width across categories
// at quantile z — "the estimate is within ±e of the truth (per category)
// with the stated confidence".
func (c *Collector) MarginOfError(z float64) (float64, error) {
	s, err := c.Snapshot(z)
	if err != nil {
		return 0, err
	}
	return s.worstHalfWidth(), nil
}

// ReportsForMargin returns the approximate number of reports needed for the
// worst-category half-width at quantile z to shrink to the target margin,
// assuming the current estimate of the distribution. It needs at least one
// ingested report to calibrate.
func (c *Collector) ReportsForMargin(margin, z float64) (int, error) {
	return reportsForMargin(c.sv, c.counts, c.total, margin, z)
}

// Respondent models one individual: a private value and the shared disguise
// matrix. Report draws the disguised value to submit; the private value
// never leaves the struct.
type Respondent struct {
	value    int
	samplers []*randx.Alias
}

// NewRespondent prepares a respondent holding the given private value. The
// alias samplers come from the matrix's shared cache (rr.Matrix.Samplers),
// so a population of respondents over one scheme builds the tables once
// instead of once per respondent.
func NewRespondent(m *rr.Matrix, value int) (*Respondent, error) {
	if value < 0 || value >= m.N() {
		return nil, fmt.Errorf("%w: value %d of %d categories", ErrBadReport, value, m.N())
	}
	samplers, err := m.Samplers()
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	return &Respondent{value: value, samplers: samplers}, nil
}

// Report draws one disguised report. Repeated reports are independent draws
// (callers wanting one-shot semantics should call it once).
func (r *Respondent) Report(rng *randx.Source) int {
	return r.samplers[r.value].Draw(rng)
}

// Simulate runs a complete collection campaign: records values drawn from
// the prior, disguised with m, ingested into a fresh collector. It returns
// the collector ready for querying.
func Simulate(m *rr.Matrix, prior []float64, records int, rng *randx.Source) (*Collector, error) {
	if records <= 0 {
		return nil, fmt.Errorf("collector: records must be positive, got %d", records)
	}
	alias, err := randx.NewAlias(prior)
	if err != nil {
		return nil, fmt.Errorf("collector: %w", err)
	}
	originals := make([]int, records)
	for i := range originals {
		originals[i] = alias.Draw(rng)
	}
	disguised, err := m.Disguise(originals, rng)
	if err != nil {
		return nil, err
	}
	c := New(m)
	if err := c.IngestBatch(disguised); err != nil {
		return nil, err
	}
	return c, nil
}
