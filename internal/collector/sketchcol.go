package collector

import (
	"encoding/json"
	"fmt"
	"sort"

	"optrr/internal/obs"
	"optrr/internal/rr"
)

// SketchCollector aggregates encoded reports for any rr.Scheme whose report
// space is decoupled from its domain — in practice the Count-Mean-Sketch
// scheme, where reports index a k×m grid while the domain may be millions of
// categories. It reuses the cache-line-padded shardSet of ShardedCollector,
// so the concurrency story is identical: a single report is one atomic add
// on the ingesting goroutine's home shard, batches land whole on one shard
// under its mutex, and queries take every shard mutex in index order for a
// consistent fold. Memory is O(shards · ReportSpace), independent of the
// domain size.
//
// Estimation routes through the scheme's debiasing (Scheme.EstimateFrom), so
// a SketchCollector answers point queries for any requested categories and
// scans for heavy hitters without ever materializing a dense domain-sized
// matrix.
//
// The zero value is not usable; construct with NewSketch or RestoreSketch.
type SketchCollector struct {
	scheme rr.Scheme
	set    shardSet
	ins    *instrumentation
}

// HeavyHitter is one discovered frequent category: its index in the original
// domain and its debiased frequency estimate.
type HeavyHitter struct {
	Category int     `json:"category"`
	Estimate float64 `json:"estimate"`
}

// NewSketch returns a sketch collector for reports encoded by the given
// scheme. The shard count is rounded up to a power of two; shards <= 0 picks
// a default sized to the scheduler (GOMAXPROCS).
func NewSketch(scheme rr.Scheme, shards int) *SketchCollector {
	return &SketchCollector{
		scheme: scheme,
		set:    newShardSet(shards, scheme.ReportSpace()),
	}
}

// Scheme returns the scheme the reports are encoded with.
func (c *SketchCollector) Scheme() rr.Scheme { return c.scheme }

// Categories returns the original domain size the scheme covers.
func (c *SketchCollector) Categories() int { return c.scheme.Domain() }

// ReportSpace returns the encoded report space the counters cover.
func (c *SketchCollector) ReportSpace() int { return c.set.width }

// Shards returns the number of stripes.
func (c *SketchCollector) Shards() int { return len(c.set.shards) }

// Instrument attaches a recorder and metrics registry. The metric names
// match the dense collectors except that no per-category series are
// registered: sketch report indices are (hash row, cell) pairs, not
// categories, and a k·m-sized series set would be dashboard noise.
func (c *SketchCollector) Instrument(rec obs.Recorder, reg *obs.Registry) {
	c.ins = newInstrumentation(rec, reg, 0)
}

// Ingest adds one encoded report: a single atomic increment on the calling
// goroutine's home shard.
func (c *SketchCollector) Ingest(report int) error {
	if report < 0 || report >= c.set.width {
		c.ins.observeBad()
		return fmt.Errorf("%w: %d of report space %d", ErrBadReport, report, c.set.width)
	}
	c.set.home().counts[report].Add(1)
	c.ins.observeIngest(report)
	return nil
}

// IngestBatch adds many reports atomically onto one shard; on error the
// collector state is unchanged.
func (c *SketchCollector) IngestBatch(reports []int) error {
	for _, r := range reports {
		if r < 0 || r >= c.set.width {
			c.ins.observeBad()
			return fmt.Errorf("%w: %d of report space %d", ErrBadReport, r, c.set.width)
		}
	}
	sh := c.set.home()
	sh.mu.Lock()
	for _, r := range reports {
		sh.counts[r].Add(1)
	}
	sh.mu.Unlock()
	if c.ins != nil {
		for _, r := range reports {
			c.ins.observeIngest(r)
		}
		c.ins.observeBatch(len(reports), c.Count())
	}
	return nil
}

// Count returns the number of reports ingested so far.
func (c *SketchCollector) Count() int {
	defer c.set.lockAll()()
	_, total := c.set.countsLocked()
	return total
}

// Counts returns a consistent copy of the encoded report counts (row-major
// k×m for the sketch scheme).
func (c *SketchCollector) Counts() []int {
	defer c.set.lockAll()()
	counts, _ := c.set.countsLocked()
	return counts
}

// consistentCounts folds a consistent view and maps an empty collector onto
// ErrNoReports, matching the dense collectors' query contract.
func (c *SketchCollector) consistentCounts() ([]int, error) {
	unlock := c.set.lockAll()
	counts, total := c.set.countsLocked()
	unlock()
	if total == 0 {
		return nil, ErrNoReports
	}
	return counts, nil
}

// Estimate returns debiased frequency estimates for the requested original
// categories; with no arguments it estimates the full domain (which for a
// huge domain is an O(domain · hashes) scan — prefer point queries or
// HeavyHitters there).
func (c *SketchCollector) Estimate(categories ...int) ([]float64, error) {
	counts, err := c.consistentCounts()
	if err != nil {
		return nil, err
	}
	if len(categories) == 0 {
		categories = nil
	}
	return c.scheme.EstimateFrom(counts, categories)
}

// HeavyHitters scans the full domain and returns the categories whose
// debiased frequency estimate is at least threshold, sorted by estimate
// descending (ties by category index). limit > 0 caps the result length;
// limit <= 0 returns all categories over the threshold.
func (c *SketchCollector) HeavyHitters(threshold float64, limit int) ([]HeavyHitter, error) {
	counts, err := c.consistentCounts()
	if err != nil {
		return nil, err
	}
	ests, err := c.scheme.EstimateFrom(counts, nil)
	if err != nil {
		return nil, err
	}
	hits := make([]HeavyHitter, 0, 16)
	for x, e := range ests {
		if e >= threshold {
			hits = append(hits, HeavyHitter{Category: x, Estimate: e})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Estimate != hits[j].Estimate {
			return hits[i].Estimate > hits[j].Estimate
		}
		return hits[i].Category < hits[j].Category
	})
	if limit > 0 && len(hits) > limit {
		hits = hits[:limit]
	}
	return hits, nil
}

// Merge folds a consistent view of other's counts into c. The two
// collectors must use the identical scheme (same wire fingerprint) — merging
// grids built under different hash families or inner matrices would debias
// into garbage. other is left unchanged. Merging a collector into itself
// deadlocks; don't.
func (c *SketchCollector) Merge(other *SketchCollector) error {
	cv, err := rr.SchemeVersion(c.scheme)
	if err != nil {
		return err
	}
	ov, err := rr.SchemeVersion(other.scheme)
	if err != nil {
		return err
	}
	if cv != ov {
		return fmt.Errorf("collector: merge requires identical schemes (version %s vs %s)", cv, ov)
	}
	unlock := other.set.lockAll()
	counts, total := other.set.countsLocked()
	unlock()
	sh := c.set.home()
	sh.mu.Lock()
	for k, v := range counts {
		sh.counts[k].Add(int64(v))
	}
	sh.mu.Unlock()
	if c.ins != nil {
		c.ins.observeBatch(total, c.Count())
	}
	return nil
}

// sketchJSON is the crash-recovery wire form: the scheme in its kind-tagged
// envelope, a consistent fold of the counts, and the total as a redundant
// integrity check. Shard layout is an in-memory concern and deliberately not
// persisted — restore re-stripes freely.
type sketchJSON struct {
	Scheme json.RawMessage `json:"scheme"`
	Counts []int           `json:"counts"`
	Total  *int            `json:"total,omitempty"`
}

// MarshalJSON serializes a consistent snapshot of the collection state for
// crash recovery.
func (c *SketchCollector) MarshalJSON() ([]byte, error) {
	env, err := rr.MarshalScheme(c.scheme)
	if err != nil {
		return nil, err
	}
	unlock := c.set.lockAll()
	counts, total := c.set.countsLocked()
	unlock()
	return json.Marshal(sketchJSON{Scheme: env, Counts: counts, Total: &total})
}

// RestoreSketch rebuilds a sketch collector from a MarshalJSON snapshot,
// striped across the given number of shards (<= 0 picks the default). The
// snapshot is fully validated before any state is built; every rejection
// wraps ErrBadSnapshot, matching RestoreSharded.
func RestoreSketch(data []byte, shards int) (*SketchCollector, error) {
	var raw sketchJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrBadSnapshot, err)
	}
	if len(raw.Scheme) == 0 {
		return nil, fmt.Errorf("%w: no scheme", ErrBadSnapshot)
	}
	scheme, err := rr.UnmarshalScheme(raw.Scheme)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if len(raw.Counts) != scheme.ReportSpace() {
		return nil, fmt.Errorf("%w: %d counts for report space %d", ErrBadSnapshot, len(raw.Counts), scheme.ReportSpace())
	}
	sum := 0
	for k, v := range raw.Counts {
		if v < 0 {
			return nil, fmt.Errorf("%w: count[%d] = %d is negative", ErrBadSnapshot, k, v)
		}
		sum += v
	}
	if raw.Total != nil && *raw.Total != sum {
		return nil, fmt.Errorf("%w: total %d but counts sum to %d", ErrBadSnapshot, *raw.Total, sum)
	}
	c := NewSketch(scheme, shards)
	sh := &c.set.shards[0]
	for k, v := range raw.Counts {
		sh.counts[k].Store(int64(v))
	}
	return c, nil
}
