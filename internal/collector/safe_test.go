package collector

import (
	"sync"
	"testing"

	"optrr/internal/randx"
)

func TestSafeCollectorConcurrentIngest(t *testing.T) {
	m := mustWarner(t, 4, 0.8)
	s := NewSafe(m)
	const (
		workers = 8
		each    = 5000
	)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(seed uint64) {
			defer wg.Done()
			rng := randx.New(seed)
			for i := 0; i < each; i++ {
				if err := s.Ingest(rng.Intn(4)); err != nil {
					t.Error(err)
					return
				}
				if i%1000 == 0 {
					// Interleave queries with ingestion.
					if _, err := s.Estimate(); err != nil && err != ErrNoReports {
						t.Error(err)
						return
					}
				}
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	if got := s.Count(); got != workers*each {
		t.Fatalf("count = %d, want %d", got, workers*each)
	}
	sum, err := s.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Reports != workers*each {
		t.Fatalf("snapshot reports = %d", sum.Reports)
	}
	var total float64
	for _, v := range sum.Estimate {
		total += v
	}
	if total < 0.999 || total > 1.001 {
		t.Fatalf("estimate sums to %v", total)
	}
}

func TestSafeCollectorDelegates(t *testing.T) {
	m := mustWarner(t, 3, 0.8)
	s := NewSafe(m)
	if _, err := s.Estimate(); err != ErrNoReports {
		t.Fatalf("err = %v, want ErrNoReports", err)
	}
	if err := s.IngestBatch([]int{0, 1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	if _, err := s.EstimateClipped(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.MarginOfError(1.96); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReportsForMargin(0.01, 1.96); err != nil {
		t.Fatal(err)
	}
	if err := s.Ingest(9); err == nil {
		t.Fatal("bad report accepted")
	}
}
