package collector

import (
	"fmt"
	"math"

	"optrr/internal/matrix"
	"optrr/internal/metrics"
	"optrr/internal/rr"
)

// solver caches the LU factorization — and the explicit inverse the variance
// queries need — of the disguise matrix at collector construction. The
// matrix is fixed for a whole collection campaign, but the query path used
// to re-factorize it on every Estimate and re-invert it on every Snapshot;
// with the cache a query is a single triangular solve. A singular matrix
// does not fail construction (mirroring New's historical no-error
// signature): the error is remembered and every estimate query returns it,
// exactly as the on-the-fly factorization used to.
type solver struct {
	m   *rr.Matrix
	lu  *matrix.LU
	inv *matrix.Dense
	err error
}

// newSolver factorizes m once. The factorization arithmetic is identical to
// the one-shot matrix.Dense.Solve path, so cached estimates are bit-for-bit
// the estimates the uncached collector produced.
func newSolver(m *rr.Matrix) *solver {
	sv := &solver{m: m, lu: matrix.NewLU()}
	if err := m.FactorizeInto(sv.lu); err != nil {
		sv.err = err
		return sv
	}
	inv, err := sv.lu.Inverse()
	if err != nil {
		sv.err = fmt.Errorf("%w: %v", rr.ErrSingular, err)
		return sv
	}
	sv.inv = inv
	return sv
}

// estimate applies the inversion estimator (Theorem 1) to an
// already-computed disguised distribution through the cached factorization.
func (sv *solver) estimate(pStar []float64) ([]float64, error) {
	if sv.err != nil {
		return nil, sv.err
	}
	x, err := sv.lu.SolveVec(pStar)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", rr.ErrSingular, err)
	}
	return x, nil
}

// distributions derives the disguised and reconstructed (clipped)
// distributions from a point-in-time counts view.
func (sv *solver) distributions(counts []int, total int) (disguised, est []float64, err error) {
	if total == 0 {
		return nil, nil, ErrNoReports
	}
	disguised = make([]float64, len(counts))
	inv := 1 / float64(total)
	for i, n := range counts {
		disguised[i] = float64(n) * inv
	}
	raw, err := sv.estimate(disguised)
	if err != nil {
		return nil, nil, err
	}
	return disguised, rr.Clip(raw), nil
}

// summarize builds the Summary for a point-in-time counts/total view.
// Collector.Snapshot and ShardedCollector.Snapshot both go through it, so
// the two collectors reconstruct through the same cached factorization and
// report identical numbers for identical ingest streams.
func summarize(sv *solver, counts []int, total int, z float64) (Summary, error) {
	// !(z > 0) rather than z <= 0: NaN fails every comparison, so a NaN z
	// would otherwise sail through and poison every half-width.
	if !(z > 0) || math.IsInf(z, 1) {
		return Summary{}, fmt.Errorf("collector: z must be a positive finite number, got %v", z)
	}
	disguised, est, err := sv.distributions(counts, total)
	if err != nil {
		return Summary{}, err
	}
	mses, err := metrics.PerCategoryMSEWithInverse(sv.m, sv.inv, est, total)
	if err != nil {
		return Summary{}, fmt.Errorf("collector: %w", err)
	}
	half := make([]float64, len(mses))
	for k, v := range mses {
		if v > 0 {
			half[k] = z * math.Sqrt(v)
		}
	}
	return Summary{
		Reports:   total,
		Disguised: disguised,
		Estimate:  est,
		HalfWidth: half,
		Z:         z,
	}, nil
}

// reportsForMargin projects the reports needed for the worst-category
// half-width at quantile z to shrink to the target margin, given the current
// counts. Edge cases are pinned by TestReportsForMarginEdgeCases: a
// non-positive or non-finite margin is ErrBadMargin (NaN fails the < 0 and
// <= 0 comparisons, so it needs an explicit check — before the fix it flowed
// into the extrapolation and produced an undefined int conversion); an empty
// collector is ErrNoReports, never a division by zero; and a margin the
// current collection already meets answers with the current total rather
// than extrapolating downward.
func reportsForMargin(sv *solver, counts []int, total int, margin, z float64) (int, error) {
	if !(margin > 0) || math.IsInf(margin, 1) {
		return 0, fmt.Errorf("%w: got %v", ErrBadMargin, margin)
	}
	if total == 0 {
		return 0, ErrNoReports
	}
	s, err := summarize(sv, counts, total, z)
	if err != nil {
		return 0, err
	}
	cur := s.worstHalfWidth()
	if cur <= margin {
		// Already there (or exactly there): the answer is the evidence we
		// have, not a <= total extrapolation.
		return total, nil
	}
	// Half-widths scale as 1/sqrt(N).
	scale := cur / margin
	need := float64(total) * scale * scale
	if need > math.MaxInt32 {
		return math.MaxInt32, nil
	}
	return int(math.Ceil(need)), nil
}

// worstHalfWidth returns the largest confidence half-width across categories.
func (s Summary) worstHalfWidth() float64 {
	var worst float64
	for _, h := range s.HalfWidth {
		if h > worst {
			worst = h
		}
	}
	return worst
}
