package collector

import (
	"testing"

	"optrr/internal/obs"
	"optrr/internal/rr"
)

func instrumentedCollector(t *testing.T) (*Collector, *obs.MemoryRecorder, *obs.Registry) {
	t.Helper()
	m, err := rr.Warner(3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	c := New(m)
	rec := obs.NewMemory()
	reg := obs.NewRegistry()
	c.Instrument(rec, reg)
	return c, rec, reg
}

func TestInstrumentCounters(t *testing.T) {
	c, rec, reg := instrumentedCollector(t)
	if err := c.IngestBatch([]int{0, 1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(1); err != nil {
		t.Fatal(err)
	}
	if err := c.Ingest(99); err == nil {
		t.Fatal("bad report accepted")
	}

	if got := reg.Counter("collector.reports").Value(); got != 5 {
		t.Fatalf("collector.reports = %d, want 5", got)
	}
	if got := reg.Counter("collector.batches").Value(); got != 1 {
		t.Fatalf("collector.batches = %d, want 1", got)
	}
	if got := reg.Counter("collector.bad_reports").Value(); got != 1 {
		t.Fatalf("collector.bad_reports = %d, want 1", got)
	}
	for k, want := range []int64{1, 3, 1} {
		if got := reg.Counter("collector.reports.cat" + string(rune('0'+k))).Value(); got != want {
			t.Fatalf("cat%d = %d, want %d", k, got, want)
		}
	}

	batches := rec.Named("collector.batch")
	if len(batches) != 1 {
		t.Fatalf("got %d batch events, want 1", len(batches))
	}
	if batches[0].Fields["size"] != 4 || batches[0].Fields["total"] != 4 {
		t.Fatalf("batch event = %v", batches[0].Fields)
	}
}

func TestInstrumentSnapshotEventAndMarginGauge(t *testing.T) {
	c, rec, reg := instrumentedCollector(t)
	if err := c.IngestBatch([]int{0, 0, 1, 2, 1, 0, 2, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	s, err := c.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	evs := rec.Named("collector.snapshot")
	if len(evs) != 1 {
		t.Fatalf("got %d snapshot events, want 1", len(evs))
	}
	f := evs[0].Fields
	if f["reports"] != 10 || f["z"] != 1.96 {
		t.Fatalf("snapshot event = %v", f)
	}
	margin := f["margin"].(float64)
	if margin <= 0 {
		t.Fatalf("margin = %v", margin)
	}
	if got := reg.Gauge("collector.margin").Value(); got != margin {
		t.Fatalf("margin gauge = %v, event margin = %v", got, margin)
	}
	est := f["estimate"].([]float64)
	if len(est) != 3 || len(f["half_width"].([]float64)) != len(s.HalfWidth) {
		t.Fatalf("snapshot arrays malformed: %v", f)
	}
	if got := reg.Counter("collector.snapshots").Value(); got != 1 {
		t.Fatalf("collector.snapshots = %d, want 1", got)
	}
}

func TestInstrumentNilRegistryStillWorks(t *testing.T) {
	m, err := rr.Warner(2, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	c := New(m)
	rec := obs.NewMemory()
	c.Instrument(rec, nil) // metrics go to a private registry; events still flow
	if err := c.IngestBatch([]int{0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if len(rec.Named("collector.batch")) != 1 {
		t.Fatal("no batch event with nil registry")
	}
}

// TestUninstrumentedAndNopIngestAllocations guards the zero-overhead claim:
// neither a bare collector nor one instrumented with a no-op recorder may
// allocate on the per-report hot path.
func TestUninstrumentedAndNopIngestAllocations(t *testing.T) {
	m, err := rr.Warner(4, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	bare := New(m)
	if n := testing.AllocsPerRun(200, func() {
		if err := bare.Ingest(2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("bare Ingest allocated %v times per run, want 0", n)
	}

	nop := New(m)
	nop.Instrument(nil, obs.NewRegistry())
	if n := testing.AllocsPerRun(200, func() {
		if err := nop.Ingest(2); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("nop-instrumented Ingest allocated %v times per run, want 0", n)
	}
}
