package collector

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"optrr/internal/obs"
	"optrr/internal/rr"
)

// ShardedCollector spreads the per-category counts across cache-line-padded
// shards of atomic counters so many goroutines can ingest without
// serializing on one mutex (the SafeCollector bottleneck) and without
// funnelling every report through one shared cursor cache line (the previous
// striped design's bottleneck). A single report is one atomic add on the
// ingesting goroutine's home shard — no lock, no shared write other than the
// counter cell itself; goroutines map onto shards by stack address, so a
// steady ingester keeps hitting the same shard and never bounces a foreign
// cache line.
//
// Batches (IngestBatch, Merge, Writer.Flush) land whole on one shard under
// that shard's mutex; query methods (Count, Estimate, Snapshot, …) take
// every shard mutex in index order before reading, so a batch is either
// fully in a query's view or not at all. A single report is one counter
// increment and therefore atomic by construction; the total is derived from
// the counts actually read, so every consistent view is a whole number of
// reports and every estimate reconstructs from a true distribution.
// Estimates go through the same cached LU factorization as Collector, so a
// ShardedCollector and a SafeCollector fed the same stream answer every
// query with bit-for-bit identical numbers.
//
// The zero value is not usable; construct with NewSharded or RestoreSharded.
type ShardedCollector struct {
	m      *rr.Matrix
	sv     *solver
	set    shardSet
	cursor atomic.Uint64 // round-robins Writer shard assignment only
	ins    *instrumentation
}

// NewSharded returns a sharded collector for reports disguised with m. The
// shard count is rounded up to a power of two; shards <= 0 picks a default
// sized to the scheduler (GOMAXPROCS). As with New, a singular matrix is
// accepted — ingestion works, estimate queries return rr.ErrSingular.
func NewSharded(m *rr.Matrix, shards int) *ShardedCollector {
	return &ShardedCollector{
		m:   m,
		sv:  newSolver(m),
		set: newShardSet(shards, m.N()),
	}
}

// Categories returns the attribute domain size.
func (c *ShardedCollector) Categories() int { return c.m.N() }

// Shards returns the number of stripes.
func (c *ShardedCollector) Shards() int { return len(c.set.shards) }

// Instrument attaches a recorder and metrics registry (see
// Collector.Instrument); the metric names are identical, so dashboards don't
// care which collector variant runs the campaign. Call before ingestion
// starts — the attachment itself is not synchronized, though the attached
// counters are safe for the concurrent ingestion that follows.
func (c *ShardedCollector) Instrument(rec obs.Recorder, reg *obs.Registry) {
	c.ins = newInstrumentation(rec, reg, c.m.N())
}

// home picks the calling goroutine's shard (see shardSet.home).
func (c *ShardedCollector) home() *shard { return c.set.home() }

// Ingest adds one disguised report: a single atomic increment on the calling
// goroutine's home shard.
func (c *ShardedCollector) Ingest(report int) error {
	if report < 0 || report >= c.m.N() {
		c.ins.observeBad()
		return fmt.Errorf("%w: %d of %d categories", ErrBadReport, report, c.m.N())
	}
	c.home().counts[report].Add(1)
	c.ins.observeIngest(report)
	return nil
}

// IngestBatch adds many reports atomically onto one shard; on error the
// collector state is unchanged. The shard mutex holds the batch together
// against queries; the adds stay atomic because lock-free single reports may
// land on the same shard concurrently.
func (c *ShardedCollector) IngestBatch(reports []int) error {
	n := c.m.N()
	for _, r := range reports {
		if r < 0 || r >= n {
			c.ins.observeBad()
			return fmt.Errorf("%w: %d of %d categories", ErrBadReport, r, n)
		}
	}
	sh := c.home()
	sh.mu.Lock()
	for _, r := range reports {
		sh.counts[r].Add(1)
	}
	sh.mu.Unlock()
	if c.ins != nil {
		for _, r := range reports {
			c.ins.observeIngest(r)
		}
		c.ins.observeBatch(len(reports), c.Count())
	}
	return nil
}

// lockAll acquires every shard lock in index order (see shardSet.lockAll).
func (c *ShardedCollector) lockAll() func() { return c.set.lockAll() }

// countsLocked folds the shard stripes into one (counts, total) view (see
// shardSet.countsLocked).
func (c *ShardedCollector) countsLocked() ([]int, int) { return c.set.countsLocked() }

// Count returns the number of reports ingested so far.
func (c *ShardedCollector) Count() int {
	defer c.lockAll()()
	_, total := c.countsLocked()
	return total
}

// Counts returns a consistent copy of the per-category report counts.
func (c *ShardedCollector) Counts() []int {
	defer c.lockAll()()
	counts, _ := c.countsLocked()
	return counts
}

// Disguised returns the empirical distribution of the disguised reports.
func (c *ShardedCollector) Disguised() ([]float64, error) {
	defer c.lockAll()()
	counts, total := c.countsLocked()
	if total == 0 {
		return nil, ErrNoReports
	}
	out := make([]float64, len(counts))
	inv := 1 / float64(total)
	for i, n := range counts {
		out[i] = float64(n) * inv
	}
	return out, nil
}

// Estimate reconstructs the original distribution from the reports so far
// (inversion estimator, Theorem 1) through the cached factorization.
func (c *ShardedCollector) Estimate() ([]float64, error) {
	pStar, err := c.Disguised()
	if err != nil {
		return nil, err
	}
	return c.sv.estimate(pStar)
}

// EstimateClipped is Estimate projected onto the probability simplex.
func (c *ShardedCollector) EstimateClipped() ([]float64, error) {
	est, err := c.Estimate()
	if err != nil {
		return nil, err
	}
	return rr.Clip(est), nil
}

// Snapshot returns a consistent point-in-time view with confidence
// half-widths at quantile z (see Collector.Snapshot).
func (c *ShardedCollector) Snapshot(z float64) (Summary, error) {
	unlock := c.lockAll()
	counts, total := c.countsLocked()
	unlock()
	s, err := summarize(c.sv, counts, total, z)
	if err != nil {
		return Summary{}, err
	}
	c.ins.observeSnapshot(s)
	return s, nil
}

// MarginOfError returns the worst-category half-width at quantile z.
func (c *ShardedCollector) MarginOfError(z float64) (float64, error) {
	s, err := c.Snapshot(z)
	if err != nil {
		return 0, err
	}
	return s.worstHalfWidth(), nil
}

// ReportsForMargin projects the reports needed to reach the target margin.
func (c *ShardedCollector) ReportsForMargin(margin, z float64) (int, error) {
	unlock := c.lockAll()
	counts, total := c.countsLocked()
	unlock()
	return reportsForMargin(c.sv, counts, total, margin, z)
}

// Merge folds a consistent view of other's counts into c, e.g. to combine
// per-region collectors into a campaign-wide one. The two collectors must
// use the same disguise matrix — merging streams disguised under different
// matrices would make the inversion estimator meaningless. other is left
// unchanged. Merging a collector into itself deadlocks; don't.
func (c *ShardedCollector) Merge(other *ShardedCollector) error {
	if c.m.N() != other.m.N() {
		return fmt.Errorf("%w: merging %d categories into %d", rr.ErrShape, other.m.N(), c.m.N())
	}
	for i := 0; i < c.m.N(); i++ {
		for j := 0; j < c.m.N(); j++ {
			if c.m.Theta(j, i) != other.m.Theta(j, i) {
				return fmt.Errorf("collector: merge requires identical disguise matrices (entry [%d][%d] differs)", j, i)
			}
		}
	}
	unlock := other.lockAll()
	counts, total := other.countsLocked()
	unlock()
	sh := c.home()
	sh.mu.Lock()
	for k, v := range counts {
		sh.counts[k].Add(int64(v))
	}
	sh.mu.Unlock()
	if c.ins != nil {
		c.ins.observeBatch(total, c.Count())
	}
	return nil
}

// shardedJSON is the crash-recovery wire form: the disguise matrix, a
// consistent fold of the counts, and the total as a redundant integrity
// check (a truncated or hand-edited counts array with a plausible shape is
// otherwise undetectable). Shard layout is an in-memory concern and
// deliberately not persisted — restore re-stripes freely.
type shardedJSON struct {
	Matrix *rr.Matrix `json:"matrix"`
	Counts []int      `json:"counts"`
	// Total is optional on decode so snapshots written before it existed
	// still restore; when present it must equal the sum of Counts.
	Total *int `json:"total,omitempty"`
}

// MarshalJSON serializes a consistent snapshot of the collection state
// (matrix + folded counts + total) for crash recovery.
func (c *ShardedCollector) MarshalJSON() ([]byte, error) {
	unlock := c.lockAll()
	counts, total := c.countsLocked()
	unlock()
	return json.Marshal(shardedJSON{Matrix: c.m, Counts: counts, Total: &total})
}

// RestoreSharded rebuilds a sharded collector from a MarshalJSON snapshot,
// striped across the given number of shards (<= 0 picks the default). The
// snapshot is fully validated before any state is built: the matrix must
// decode as a valid RR matrix, the counts must match its dimension and be
// non-negative, and the recorded total (when present) must equal their sum.
// Every rejection wraps ErrBadSnapshot, so a server restoring at boot can
// distinguish "corrupt file, start fresh" from I/O errors.
func RestoreSharded(data []byte, shards int) (*ShardedCollector, error) {
	var raw shardedJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("%w: decoding: %v", ErrBadSnapshot, err)
	}
	if raw.Matrix == nil {
		return nil, fmt.Errorf("%w: no matrix", ErrBadSnapshot)
	}
	if len(raw.Counts) != raw.Matrix.N() {
		return nil, fmt.Errorf("%w: %d counts for %d categories", ErrBadSnapshot, len(raw.Counts), raw.Matrix.N())
	}
	sum := 0
	for k, v := range raw.Counts {
		if v < 0 {
			return nil, fmt.Errorf("%w: count[%d] = %d is negative", ErrBadSnapshot, k, v)
		}
		sum += v
	}
	if raw.Total != nil && *raw.Total != sum {
		return nil, fmt.Errorf("%w: total %d but counts sum to %d", ErrBadSnapshot, *raw.Total, sum)
	}
	c := NewSharded(raw.Matrix, shards)
	sh := &c.set.shards[0]
	for k, v := range raw.Counts {
		sh.counts[k].Store(int64(v))
	}
	return c, nil
}
