package collector

import (
	"fmt"

	"optrr/internal/obs"
)

// This file instruments the collection pipeline. A bare Collector carries a
// nil *instrumentation and pays nothing; Instrument attaches counters
// (ingestion volume, per-category report counts, malformed reports), gauges
// (running confidence margin) and structured events ("collector.batch" per
// batch, "collector.snapshot" per consistency query). Single-report Ingest
// updates counters only — at millions of respondents an event per report
// would drown the trace.

// instrumentation caches the metric pointers the ingestion hot path touches.
type instrumentation struct {
	rec        obs.Recorder
	ingested   *obs.Counter   // collector.reports
	batches    *obs.Counter   // collector.batches
	badReports *obs.Counter   // collector.bad_reports
	snapshots  *obs.Counter   // collector.snapshots
	perCat     []*obs.Counter // collector.reports.cat<k>
	margin     *obs.Gauge     // collector.margin (worst half-width at last snapshot)
	batchSize  *obs.Histogram // collector.batch_size
}

// Instrument attaches a recorder and a metrics registry to the collector.
// Either may be nil: a nil rec records nothing, a nil reg sends the metrics
// to a private unpublished registry (so the counters still work for local
// inspection via the returned registry of a later call — callers wanting
// them served must pass their own). Call before ingestion starts; the
// method is not synchronized with concurrent use.
func (c *Collector) Instrument(rec obs.Recorder, reg *obs.Registry) {
	c.ins = newInstrumentation(rec, reg, len(c.counts))
}

// newInstrumentation builds the shared metric set for an n-category
// collector. Collector and ShardedCollector both register under the same
// metric names, so dashboards don't care which collector variant is behind
// the campaign.
func newInstrumentation(rec obs.Recorder, reg *obs.Registry, n int) *instrumentation {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ins := &instrumentation{
		rec:        obs.OrNop(rec),
		ingested:   reg.Counter("collector.reports"),
		batches:    reg.Counter("collector.batches"),
		badReports: reg.Counter("collector.bad_reports"),
		snapshots:  reg.Counter("collector.snapshots"),
		perCat:     make([]*obs.Counter, n),
		margin:     reg.Gauge("collector.margin"),
		batchSize: reg.Histogram("collector.batch_size",
			[]float64{1, 10, 100, 1000, 10000, 100000}),
	}
	for k := range ins.perCat {
		ins.perCat[k] = reg.Counter(fmt.Sprintf("collector.reports.cat%d", k))
	}
	return ins
}

// observeIngest updates the per-report counters. The per-category counter is
// bounds-guarded: the sketch collector registers no per-category series (its
// report space is k·m sketch cells, not meaningful categories), so its
// instrumentation has an empty perCat.
func (ins *instrumentation) observeIngest(report int) {
	if ins == nil {
		return
	}
	ins.ingested.Inc()
	if report < len(ins.perCat) {
		ins.perCat[report].Inc()
	}
}

// observeBad counts a rejected report.
func (ins *instrumentation) observeBad() {
	if ins == nil {
		return
	}
	ins.badReports.Inc()
}

// observeBatch updates the batch counters and emits a "collector.batch"
// event.
func (ins *instrumentation) observeBatch(size, total int) {
	if ins == nil {
		return
	}
	ins.batches.Inc()
	ins.batchSize.Observe(float64(size))
	if ins.rec.Enabled() {
		ins.rec.Record("collector.batch", obs.Fields{
			"size":  size,
			"total": total,
		})
	}
}

// observeSnapshot publishes the running reconstruction: the worst
// half-width moves the margin gauge, and the full per-category view goes to
// the trace.
func (ins *instrumentation) observeSnapshot(s Summary) {
	if ins == nil {
		return
	}
	ins.snapshots.Inc()
	worst := 0.0
	for _, h := range s.HalfWidth {
		if h > worst {
			worst = h
		}
	}
	ins.margin.Set(worst)
	if ins.rec.Enabled() {
		ins.rec.Record("collector.snapshot", obs.Fields{
			"reports":    s.Reports,
			"z":          s.Z,
			"margin":     worst,
			"estimate":   append([]float64(nil), s.Estimate...),
			"half_width": append([]float64(nil), s.HalfWidth...),
		})
	}
}
