package collector

import (
	"sync"

	"optrr/internal/obs"
	"optrr/internal/rr"
)

// SafeCollector wraps Collector with a mutex so many goroutines — e.g. one
// per network handler — can ingest concurrently. Query methods take the same
// lock, so snapshots are consistent points in time.
type SafeCollector struct {
	mu sync.Mutex
	c  *Collector
}

// NewSafe returns a concurrency-safe collector for reports disguised with m.
func NewSafe(m *rr.Matrix) *SafeCollector {
	return &SafeCollector{c: New(m)}
}

// Instrument attaches a recorder and metrics registry (see
// Collector.Instrument). The recorder and registry must themselves be safe
// for concurrent use — everything in internal/obs is.
func (s *SafeCollector) Instrument(rec obs.Recorder, reg *obs.Registry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.c.Instrument(rec, reg)
}

// Ingest adds one disguised report.
func (s *SafeCollector) Ingest(report int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Ingest(report)
}

// IngestBatch adds many reports atomically.
func (s *SafeCollector) IngestBatch(reports []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.IngestBatch(reports)
}

// Count returns the number of reports ingested so far.
func (s *SafeCollector) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Count()
}

// Estimate reconstructs the original distribution from the reports so far.
func (s *SafeCollector) Estimate() ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Estimate()
}

// EstimateClipped is Estimate projected onto the probability simplex.
func (s *SafeCollector) EstimateClipped() ([]float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.EstimateClipped()
}

// Snapshot returns a consistent point-in-time view with confidence
// half-widths at quantile z.
func (s *SafeCollector) Snapshot(z float64) (Summary, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.Snapshot(z)
}

// MarginOfError returns the worst-category half-width at quantile z.
func (s *SafeCollector) MarginOfError(z float64) (float64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.MarginOfError(z)
}

// ReportsForMargin projects the reports needed to reach the target margin.
func (s *SafeCollector) ReportsForMargin(margin, z float64) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.c.ReportsForMargin(margin, z)
}
