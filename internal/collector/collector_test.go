package collector

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

func mustWarner(t testing.TB, n int, p float64) *rr.Matrix {
	t.Helper()
	m, err := rr.Warner(n, p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestIngestValidation(t *testing.T) {
	c := New(mustWarner(t, 3, 0.8))
	if err := c.Ingest(3); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v, want ErrBadReport", err)
	}
	if err := c.Ingest(-1); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v, want ErrBadReport", err)
	}
	if err := c.Ingest(2); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestIngestBatchAtomic(t *testing.T) {
	c := New(mustWarner(t, 3, 0.8))
	if err := c.IngestBatch([]int{0, 1, 7}); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v, want ErrBadReport", err)
	}
	if c.Count() != 0 {
		t.Fatal("failed batch left partial state")
	}
	if err := c.IngestBatch([]int{0, 1, 2, 1}); err != nil {
		t.Fatal(err)
	}
	counts := c.Counts()
	if counts[0] != 1 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestEstimateBeforeIngestion(t *testing.T) {
	c := New(mustWarner(t, 3, 0.8))
	if _, err := c.Estimate(); !errors.Is(err, ErrNoReports) {
		t.Fatalf("err = %v, want ErrNoReports", err)
	}
	if _, err := c.Snapshot(1.96); !errors.Is(err, ErrNoReports) {
		t.Fatalf("snapshot err = %v, want ErrNoReports", err)
	}
}

func TestSimulateRecoversPrior(t *testing.T) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	m := mustWarner(t, 4, 0.75)
	c, err := Simulate(m, prior, 60000, randx.New(5))
	if err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateClipped()
	if err != nil {
		t.Fatal(err)
	}
	for k := range prior {
		if math.Abs(est[k]-prior[k]) > 0.02 {
			t.Errorf("category %d: %v vs %v", k, est[k], prior[k])
		}
	}
	if c.Count() != 60000 {
		t.Fatalf("count = %d", c.Count())
	}
}

func TestSimulateValidation(t *testing.T) {
	m := mustWarner(t, 3, 0.8)
	if _, err := Simulate(m, []float64{0.5, 0.3, 0.2}, 0, randx.New(1)); err == nil {
		t.Fatal("records = 0 accepted")
	}
	if _, err := Simulate(m, []float64{0, 0, 0}, 10, randx.New(1)); err == nil {
		t.Fatal("zero prior accepted")
	}
}

func TestSnapshotConsistency(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	m := mustWarner(t, 3, 0.8)
	c, err := Simulate(m, prior, 10000, randx.New(7))
	if err != nil {
		t.Fatal(err)
	}
	s, err := c.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if s.Reports != 10000 || s.Z != 1.96 {
		t.Fatalf("snapshot meta: %+v", s)
	}
	var sumD, sumE float64
	for k := range s.Disguised {
		sumD += s.Disguised[k]
		sumE += s.Estimate[k]
		if s.HalfWidth[k] <= 0 {
			t.Fatalf("half-width %d not positive: %v", k, s.HalfWidth[k])
		}
	}
	if math.Abs(sumD-1) > 1e-9 || math.Abs(sumE-1) > 1e-9 {
		t.Fatalf("distributions do not sum to 1: %v, %v", sumD, sumE)
	}
	if _, err := c.Snapshot(0); err == nil {
		t.Fatal("z = 0 accepted")
	}
}

// TestMarginShrinksWithData: the margin of error must scale down roughly as
// 1/sqrt(N).
func TestMarginShrinksWithData(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	m := mustWarner(t, 3, 0.8)
	rng := randx.New(9)
	small, err := Simulate(m, prior, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	large, err := Simulate(m, prior, 32000, rng)
	if err != nil {
		t.Fatal(err)
	}
	eSmall, err := small.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	eLarge, err := large.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	ratio := eSmall / eLarge
	// sqrt(32000/2000) = 4.
	if ratio < 3 || ratio > 5 {
		t.Fatalf("margin ratio = %v, want approx 4", ratio)
	}
}

func TestReportsForMargin(t *testing.T) {
	prior := []float64{0.5, 0.3, 0.2}
	m := mustWarner(t, 3, 0.8)
	c, err := Simulate(m, prior, 2000, randx.New(11))
	if err != nil {
		t.Fatal(err)
	}
	cur, err := c.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	// Already satisfied: returns current count.
	n, err := c.ReportsForMargin(cur*2, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2000 {
		t.Fatalf("satisfied margin: n = %d, want 2000", n)
	}
	// Halving the margin needs ~4x the data.
	n, err = c.ReportsForMargin(cur/2, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if n < 7000 || n > 9000 {
		t.Fatalf("half margin: n = %d, want approx 8000", n)
	}
	if _, err := c.ReportsForMargin(0, 1.96); err == nil {
		t.Fatal("margin = 0 accepted")
	}
}

// TestReportsForMarginPrediction: collecting the predicted number of reports
// actually achieves the target margin.
func TestReportsForMarginPrediction(t *testing.T) {
	prior := []float64{0.4, 0.35, 0.25}
	m := mustWarner(t, 3, 0.8)
	rng := randx.New(13)
	pilot, err := Simulate(m, prior, 1000, rng)
	if err != nil {
		t.Fatal(err)
	}
	const target = 0.02
	need, err := pilot.ReportsForMargin(target, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Simulate(m, prior, need, rng)
	if err != nil {
		t.Fatal(err)
	}
	got, err := full.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if got > target*1.15 {
		t.Fatalf("achieved margin %v, wanted <= %v (predicted %d reports)", got, target, need)
	}
}

func TestRespondentReports(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	if _, err := NewRespondent(m, 9); !errors.Is(err, ErrBadReport) {
		t.Fatal("bad respondent value accepted")
	}
	r, err := NewRespondent(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := randx.New(15)
	const draws = 100000
	counts := make([]float64, 4)
	for i := 0; i < draws; i++ {
		counts[r.Report(rng)]++
	}
	for j := 0; j < 4; j++ {
		want := m.Theta(j, 2)
		got := counts[j] / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("report frequency %d: %v, want %v", j, got, want)
		}
	}
}

// TestEndToEndRespondentsToCollector wires respondents directly into a
// collector — the full deployment loop with no raw values crossing.
func TestEndToEndRespondentsToCollector(t *testing.T) {
	prior := []float64{0.6, 0.25, 0.15}
	m := mustWarner(t, 3, 0.8)
	rng := randx.New(17)
	alias, err := randx.NewAlias(prior)
	if err != nil {
		t.Fatal(err)
	}
	c := New(m)
	const population = 30000
	for i := 0; i < population; i++ {
		resp, err := NewRespondent(m, alias.Draw(rng))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Ingest(resp.Report(rng)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := c.Snapshot(2.58) // ~99%
	if err != nil {
		t.Fatal(err)
	}
	for k := range prior {
		lo := s.Estimate[k] - s.HalfWidth[k]
		hi := s.Estimate[k] + s.HalfWidth[k]
		if prior[k] < lo-0.01 || prior[k] > hi+0.01 {
			t.Errorf("category %d: truth %v outside [%v, %v]", k, prior[k], lo, hi)
		}
	}
}

func BenchmarkIngest(b *testing.B) {
	c := New(mustWarner(b, 10, 0.8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ingest(i % 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshot(b *testing.B) {
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	m := mustWarner(b, 4, 0.8)
	c, err := Simulate(m, prior, 10000, randx.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Snapshot(1.96); err != nil {
			b.Fatal(err)
		}
	}
}
