package collector

import (
	"errors"
	"math"
	"testing"

	"optrr/internal/randx"
)

// marginQuerier is the slice of the collector API the margin-projection
// tests exercise, satisfied by every collector flavor.
type marginQuerier interface {
	Ingest(int) error
	Count() int
	MarginOfError(float64) (float64, error)
	ReportsForMargin(margin, z float64) (int, error)
}

// TestReportsForMarginEdgeCases pins the projection's contract on the edges
// a long-lived server actually hits, for all collector flavors: a target the
// current collection already meets answers with the current total (never a
// downward extrapolation), an empty collector is ErrNoReports (not a
// division by zero), and non-positive or non-finite margins are ErrBadMargin
// instead of flowing NaN into an int conversion.
func TestReportsForMarginEdgeCases(t *testing.T) {
	m := mustWarner(t, 4, 0.8)
	flavors := []struct {
		name  string
		fresh func() marginQuerier
	}{
		{"plain", func() marginQuerier { return New(m) }},
		{"safe", func() marginQuerier { return NewSafe(m) }},
		{"sharded", func() marginQuerier { return NewSharded(m, 4) }},
	}
	for _, fl := range flavors {
		t.Run(fl.name, func(t *testing.T) {
			// Empty collector: typed error, no panic, no division by zero.
			empty := fl.fresh()
			if _, err := empty.ReportsForMargin(0.01, 1.96); !errors.Is(err, ErrNoReports) {
				t.Fatalf("empty collector err = %v, want ErrNoReports", err)
			}

			c := fl.fresh()
			rng := randx.New(7)
			for i := 0; i < 5000; i++ {
				if err := c.Ingest(rng.Intn(4)); err != nil {
					t.Fatal(err)
				}
			}
			for _, bad := range []float64{0, -0.5, math.NaN(), math.Inf(1)} {
				if _, err := c.ReportsForMargin(bad, 1.96); !errors.Is(err, ErrBadMargin) {
					t.Fatalf("margin %v err = %v, want ErrBadMargin", bad, err)
				}
			}
			for _, badZ := range []float64{0, -1.96, math.NaN(), math.Inf(1)} {
				if _, err := c.ReportsForMargin(0.01, badZ); err == nil {
					t.Fatalf("z = %v accepted", badZ)
				}
			}

			cur, err := c.MarginOfError(1.96)
			if err != nil {
				t.Fatal(err)
			}
			if cur <= 0 {
				t.Fatalf("current margin = %v, want positive", cur)
			}
			// Already-met target (current margin, doubled margin, +large):
			// the answer is the current total, never less.
			for _, met := range []float64{cur, 2 * cur, 10} {
				got, err := c.ReportsForMargin(met, 1.96)
				if err != nil {
					t.Fatal(err)
				}
				if got != c.Count() {
					t.Fatalf("met margin %v: got %d reports, want current total %d", met, got, c.Count())
				}
			}
			// Unmet target: a strictly larger projection that scales like
			// 1/margin².
			tight, err := c.ReportsForMargin(cur/2, 1.96)
			if err != nil {
				t.Fatal(err)
			}
			if tight <= c.Count() {
				t.Fatalf("tight margin projected %d reports, want > %d", tight, c.Count())
			}
			// Unreachably tight target: capped, not overflowed.
			capped, err := c.ReportsForMargin(1e-12, 1.96)
			if err != nil {
				t.Fatal(err)
			}
			if capped != math.MaxInt32 {
				t.Fatalf("capped projection = %d, want MaxInt32", capped)
			}
		})
	}
}
