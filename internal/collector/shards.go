package collector

import (
	"runtime"
	"sync"
	"sync/atomic"
	"unsafe"
)

// shardSet is the cache-line-padded striped counter core shared by
// ShardedCollector (dense reports, width = category count) and
// SketchCollector (sketch reports, width = k·m report space): a power-of-two
// set of shards, each a row of atomic counters plus the mutex that makes
// batch-style writes atomic with respect to queries. Goroutines map onto
// shards by stack address, so a steady ingester keeps hitting the same shard
// and never bounces a foreign cache line.
type shardSet struct {
	width  int
	shards []shard
}

// shard is one stripe of counts: a row of atomic counters (padded out to
// whole cache lines so neighbouring shards' rows never false-share) plus the
// mutex that makes batch-style writes atomic with respect to queries.
// Single-report ingestion never touches the mutex.
type shard struct {
	mu     sync.Mutex
	counts []atomic.Int64
	_      [40]byte
}

// countersPerLine is how many atomic.Int64 cells fill one 64-byte cache
// line; count rows are rounded up to this so two shards never share a line.
const countersPerLine = 8

func newShardRow(n int) []atomic.Int64 {
	padded := (n + countersPerLine - 1) / countersPerLine * countersPerLine
	return make([]atomic.Int64, padded)[:n]
}

// newShardSet builds a set of width-wide count stripes. The shard count is
// rounded up to a power of two; shards <= 0 picks a default sized to the
// scheduler (GOMAXPROCS).
func newShardSet(shards, width int) shardSet {
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
		if shards < 1 {
			shards = 1
		}
	}
	pow2 := 1
	for pow2 < shards {
		pow2 <<= 1
	}
	s := shardSet{width: width, shards: make([]shard, pow2)}
	for i := range s.shards {
		s.shards[i].counts = newShardRow(width)
	}
	return s
}

// home picks the calling goroutine's shard from its stack address. Stacks
// live in distinct memory regions at least 2 KiB apart, so shifting a stack
// address down 11 bits gives a value that is stable for one goroutine at a
// given call depth and distinct across goroutines — shard affinity without a
// goroutine ID and without any shared cursor. The address never converts
// back to a pointer; only its page number is used. A collision only means
// two goroutines share a shard's counters (still correct, just contended).
func (s *shardSet) home() *shard {
	var marker byte
	page := uintptr(unsafe.Pointer(&marker)) >> 11
	return &s.shards[int(page)&(len(s.shards)-1)]
}

// lockAll acquires every shard lock in index order (the fixed order makes
// nested acquisition deadlock-free) and returns the unlock function. Holding
// all locks excludes batch-style writers; single-report ingesters are
// lock-free but individually atomic, so the fold below is still a whole
// number of reports.
func (s *shardSet) lockAll() func() {
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	return func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}
}

// countsLocked folds the shard stripes into one (counts, total) view. The
// total is the sum of the counts actually read, so the view is always
// internally consistent.
func (s *shardSet) countsLocked() ([]int, int) {
	out := make([]int, s.width)
	total := 0
	for i := range s.shards {
		for k := range s.shards[i].counts {
			v := int(s.shards[i].counts[k].Load())
			out[k] += v
			total += v
		}
	}
	return out, total
}
