package collector

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"

	"optrr/internal/randx"
	"optrr/internal/rr"
)

// TestShardedMatchesSafeExactly pins the headline equivalence claim: a
// ShardedCollector and a SafeCollector fed the identical report stream give
// bit-for-bit identical answers to every query — both reconstruct through
// the same cached factorization of the same matrix over the same folded
// counts, so no tolerance is needed.
func TestShardedMatchesSafeExactly(t *testing.T) {
	m := mustWarner(t, 5, 0.7)
	safe := NewSafe(m)
	sharded := NewSharded(m, 8)

	rng := randx.New(42)
	for i := 0; i < 5000; i++ {
		r := rng.Intn(5)
		if err := safe.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := sharded.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	batch := make([]int, 500)
	for j := range batch {
		batch[j] = rng.Intn(5)
	}
	if err := safe.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}
	if err := sharded.IngestBatch(batch); err != nil {
		t.Fatal(err)
	}

	if safe.Count() != sharded.Count() {
		t.Fatalf("count: safe %d, sharded %d", safe.Count(), sharded.Count())
	}
	wantEst, err := safe.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	gotEst, err := sharded.Estimate()
	if err != nil {
		t.Fatal(err)
	}
	for k := range wantEst {
		if wantEst[k] != gotEst[k] {
			t.Fatalf("estimate[%d]: safe %v, sharded %v (must match exactly)", k, wantEst[k], gotEst[k])
		}
	}
	wantSum, err := safe.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	gotSum, err := sharded.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if wantSum.Reports != gotSum.Reports {
		t.Fatalf("snapshot reports: %d vs %d", wantSum.Reports, gotSum.Reports)
	}
	for k := range wantSum.Estimate {
		if wantSum.Estimate[k] != gotSum.Estimate[k] {
			t.Fatalf("snapshot estimate[%d]: %v vs %v", k, wantSum.Estimate[k], gotSum.Estimate[k])
		}
		if wantSum.HalfWidth[k] != gotSum.HalfWidth[k] {
			t.Fatalf("snapshot half-width[%d]: %v vs %v", k, wantSum.HalfWidth[k], gotSum.HalfWidth[k])
		}
	}
	wantMargin, err := safe.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	gotMargin, err := sharded.MarginOfError(1.96)
	if err != nil {
		t.Fatal(err)
	}
	if wantMargin != gotMargin {
		t.Fatalf("margin: %v vs %v", wantMargin, gotMargin)
	}
	wantNeed, err := safe.ReportsForMargin(0.005, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	gotNeed, err := sharded.ReportsForMargin(0.005, 1.96)
	if err != nil {
		t.Fatal(err)
	}
	if wantNeed != gotNeed {
		t.Fatalf("reports for margin: %d vs %d", wantNeed, gotNeed)
	}
}

// TestShardedValidation mirrors the plain collector's ingest validation:
// out-of-range reports are rejected, a bad batch leaves state unchanged.
func TestShardedValidation(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 4)
	if err := c.Ingest(3); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v, want ErrBadReport", err)
	}
	if err := c.IngestBatch([]int{0, 1, 7}); !errors.Is(err, ErrBadReport) {
		t.Fatalf("batch err = %v, want ErrBadReport", err)
	}
	if c.Count() != 0 {
		t.Fatal("failed ingest left partial state")
	}
	if _, err := c.Estimate(); !errors.Is(err, ErrNoReports) {
		t.Fatalf("err = %v, want ErrNoReports", err)
	}
	if _, err := c.Snapshot(0); err == nil {
		t.Fatal("z = 0 accepted")
	}
}

// TestShardedDefaultShards: shards <= 0 picks a positive default.
func TestShardedDefaultShards(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 0)
	if c.Shards() < 1 {
		t.Fatalf("default shards = %d", c.Shards())
	}
	if err := c.Ingest(1); err != nil {
		t.Fatal(err)
	}
	if c.Count() != 1 {
		t.Fatalf("count = %d", c.Count())
	}
}

// TestShardedSingularMatrix: construction accepts a singular matrix;
// estimate queries return rr.ErrSingular, matching Collector.
func TestShardedSingularMatrix(t *testing.T) {
	m, err := rr.FromColumns([][]float64{
		{0.5, 0.5, 0},
		{0.5, 0.5, 0},
		{1, 0, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	c := NewSharded(m, 4)
	if err := c.IngestBatch([]int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Estimate(); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("err = %v, want rr.ErrSingular", err)
	}
	if _, err := c.Snapshot(1.96); !errors.Is(err, rr.ErrSingular) {
		t.Fatalf("snapshot err = %v, want rr.ErrSingular", err)
	}
}

// TestShardedMerge folds two regional collectors into one and checks the
// merged counts equal a collector that saw both streams.
func TestShardedMerge(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	a := NewSharded(m, 4)
	b := NewSharded(m, 2)
	whole := NewSharded(m, 1)

	rng := randx.New(7)
	for i := 0; i < 1000; i++ {
		r := rng.Intn(4)
		target := a
		if i%2 == 1 {
			target = b
		}
		if err := target.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := whole.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d, want 1000", a.Count())
	}
	gotCounts, wantCounts := a.Counts(), whole.Counts()
	for k := range wantCounts {
		if gotCounts[k] != wantCounts[k] {
			t.Fatalf("merged counts[%d] = %d, want %d", k, gotCounts[k], wantCounts[k])
		}
	}
	// b is unchanged by the merge.
	if b.Count() != 500 {
		t.Fatalf("source count = %d after merge, want 500", b.Count())
	}

	// Merging across different matrices is refused.
	other := NewSharded(mustWarner(t, 4, 0.9), 2)
	if err := a.Merge(other); err == nil {
		t.Fatal("merge across different disguise matrices accepted")
	}
	mismatched := NewSharded(mustWarner(t, 3, 0.7), 2)
	if err := a.Merge(mismatched); !errors.Is(err, rr.ErrShape) {
		t.Fatalf("dimension-mismatched merge err = %v, want rr.ErrShape", err)
	}
}

// TestShardedSnapshotRestore round-trips the crash-recovery snapshot: the
// restored collector answers every query exactly like the original,
// regardless of the shard count it is restored onto.
func TestShardedSnapshotRestore(t *testing.T) {
	m := mustWarner(t, 4, 0.75)
	c := NewSharded(m, 8)
	rng := randx.New(3)
	for i := 0; i < 2000; i++ {
		if err := c.Ingest(rng.Intn(4)); err != nil {
			t.Fatal(err)
		}
	}

	data, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSharded(data, 3)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Count() != c.Count() {
		t.Fatalf("restored count = %d, want %d", restored.Count(), c.Count())
	}
	want, err := c.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Snapshot(1.96)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Estimate {
		if want.Estimate[k] != got.Estimate[k] || want.HalfWidth[k] != got.HalfWidth[k] {
			t.Fatalf("restored snapshot differs at %d: %v/%v vs %v/%v",
				k, want.Estimate[k], want.HalfWidth[k], got.Estimate[k], got.HalfWidth[k])
		}
	}

	// The restored collector keeps collecting.
	if err := restored.Ingest(0); err != nil {
		t.Fatal(err)
	}
	if restored.Count() != c.Count()+1 {
		t.Fatalf("restored collector did not accept new reports")
	}
}

// TestRestoreShardedRejectsBadSnapshots covers the decode validation paths.
func TestRestoreShardedRejectsBadSnapshots(t *testing.T) {
	for _, tc := range []struct {
		name string
		data string
	}{
		{"garbage", `{"matrix": 12}`},
		{"no matrix", `{"counts": [1, 2]}`},
		{"count shape", `{"matrix": {"categories": 2, "columns": [[0.8, 0.2], [0.2, 0.8]]}, "counts": [1]}`},
		{"negative count", `{"matrix": {"categories": 2, "columns": [[0.8, 0.2], [0.2, 0.8]]}, "counts": [1, -4]}`},
		{"broken stochasticity", `{"matrix": {"categories": 2, "columns": [[0.8, 0.8], [0.2, 0.8]]}, "counts": [1, 2]}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RestoreSharded([]byte(tc.data), 2); err == nil {
				t.Fatalf("snapshot %s accepted", tc.data)
			}
		})
	}
}

// TestWriterFlushSemantics pins the buffered writer contract: reports stay
// invisible until Flush, a flush lands them as one batch, and the flushed
// totals match what direct ingestion would give.
func TestWriterFlushSemantics(t *testing.T) {
	m := mustWarner(t, 4, 0.7)
	c := NewSharded(m, 4)
	direct := NewSharded(m, 1)

	w := c.NewWriter(1000) // larger than the stream: nothing auto-flushes
	rng := randx.New(11)
	for i := 0; i < 500; i++ {
		r := rng.Intn(4)
		if err := w.Ingest(r); err != nil {
			t.Fatal(err)
		}
		if err := direct.Ingest(r); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Count(); got != 0 {
		t.Fatalf("buffered reports visible before flush: count = %d", got)
	}
	if got := w.Buffered(); got != 500 {
		t.Fatalf("Buffered() = %d, want 500", got)
	}
	w.Flush()
	if got := w.Buffered(); got != 0 {
		t.Fatalf("Buffered() = %d after flush, want 0", got)
	}
	gotCounts, wantCounts := c.Counts(), direct.Counts()
	for k := range wantCounts {
		if gotCounts[k] != wantCounts[k] {
			t.Fatalf("flushed counts[%d] = %d, want %d", k, gotCounts[k], wantCounts[k])
		}
	}
	// Flushing an empty buffer is a no-op.
	w.Flush()
	if got := c.Count(); got != 500 {
		t.Fatalf("count = %d after empty flush, want 500", got)
	}
}

// TestWriterAutoFlushAndValidation: the buffer drains itself at the flush
// threshold, and a bad report errors immediately without contaminating it.
func TestWriterAutoFlushAndValidation(t *testing.T) {
	m := mustWarner(t, 3, 0.8)
	c := NewSharded(m, 2)
	w := c.NewWriter(10)
	for i := 0; i < 25; i++ {
		if err := w.Ingest(i % 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Count(); got != 20 {
		t.Fatalf("count = %d after 25 ingests at flushEvery=10, want 20 auto-flushed", got)
	}
	if got := w.Buffered(); got != 5 {
		t.Fatalf("Buffered() = %d, want 5", got)
	}
	if err := w.Ingest(3); !errors.Is(err, ErrBadReport) {
		t.Fatalf("err = %v, want ErrBadReport", err)
	}
	if got := w.Buffered(); got != 5 {
		t.Fatalf("bad report changed the buffer: Buffered() = %d, want 5", got)
	}
	w.Flush()
	if got := c.Count(); got != 25 {
		t.Fatalf("count = %d, want 25", got)
	}
	// Default threshold kicks in for flushEvery <= 0.
	if def := c.NewWriter(0); def.limit != 256 {
		t.Fatalf("default flushEvery = %d, want 256", def.limit)
	}
}

// TestWritersSpreadAcrossShards: round-robin pinning sends consecutive
// writers to distinct shards.
func TestWritersSpreadAcrossShards(t *testing.T) {
	c := NewSharded(mustWarner(t, 3, 0.8), 4)
	seen := make(map[*shard]bool)
	for i := 0; i < 4; i++ {
		seen[c.NewWriter(8).sh] = true
	}
	if len(seen) != 4 {
		t.Fatalf("4 writers landed on %d shards, want 4", len(seen))
	}
}

// BenchmarkCollectorContention compares SafeCollector's single mutex with
// the sharded atomic counters under 1-, 4- and 16-goroutine ingestion, plus
// a buffered-Writer batch-ingest case driven through b.RunParallel. Reports
// are pregenerated outside the timer; each goroutine ingests a disjoint
// slice.
func BenchmarkCollectorContention(b *testing.B) {
	m, err := rr.Warner(5, 0.75)
	if err != nil {
		b.Fatal(err)
	}
	rng := randx.New(1)
	reports := make([]int, 1<<16)
	for i := range reports {
		reports[i] = rng.Intn(5)
	}
	type ingester interface {
		Ingest(int) error
	}
	run := func(b *testing.B, c ingester, goroutines int) {
		b.ReportAllocs()
		b.ResetTimer()
		var wg sync.WaitGroup
		for w := 0; w < goroutines; w++ {
			lo := w * b.N / goroutines
			hi := (w + 1) * b.N / goroutines
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for i := lo; i < hi; i++ {
					if err := c.Ingest(reports[i&(len(reports)-1)]); err != nil {
						b.Error(err)
						return
					}
				}
			}(lo, hi)
		}
		wg.Wait()
	}
	for _, g := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("safe/g%d", g), func(b *testing.B) {
			run(b, NewSafe(m), g)
		})
		b.Run(fmt.Sprintf("sharded/g%d", g), func(b *testing.B) {
			run(b, NewSharded(m, 16), g)
		})
	}
	b.Run("writer/batch", func(b *testing.B) {
		c := NewSharded(m, 16)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			w := c.NewWriter(256)
			i := 0
			for pb.Next() {
				if err := w.Ingest(reports[i&(len(reports)-1)]); err != nil {
					b.Error(err)
					return
				}
				i++
			}
			w.Flush()
		})
	})
}
