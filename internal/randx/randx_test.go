package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewIsDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d differs: %d vs %d", i, av, bv)
		}
	}
}

func TestSeedsDecorrelate(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds produced %d identical 64-bit draws out of 1000", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 100000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want approx 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 10, 1000} {
		seen := make([]bool, n)
		for i := 0; i < 50*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok && n <= 10 {
				t.Errorf("Intn(%d) never produced %d in %d draws", n, v, 50*n)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(99)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(draws) / n
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 9 degrees of freedom; p=0.001 critical value is 27.88.
	if chi2 > 27.88 {
		t.Fatalf("chi-square = %v exceeds 27.88; counts = %v", chi2, counts)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want approx 0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want approx 1", variance)
	}
}

func TestNormalAffine(t *testing.T) {
	r := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("mean = %v, want approx 10", mean)
	}
	if math.Abs(variance-9) > 0.2 {
		t.Errorf("variance = %v, want approx 9", variance)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ alpha, beta float64 }{
		{1, 2},   // the paper's Figure 5(a) parameters
		{0.5, 1}, // shape < 1 exercises the boost path
		{3, 0.5},
		{9, 2},
	}
	r := New(8)
	const n = 300000
	for _, c := range cases {
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := r.Gamma(c.alpha, c.beta)
			if v < 0 {
				t.Fatalf("Gamma(%v,%v) produced negative %v", c.alpha, c.beta, v)
			}
			sum += v
			sumSq += v * v
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.alpha * c.beta
		wantVar := c.alpha * c.beta * c.beta
		if math.Abs(mean-wantMean) > 0.03*wantMean+0.01 {
			t.Errorf("Gamma(%v,%v) mean = %v, want approx %v", c.alpha, c.beta, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.08*wantVar+0.02 {
			t.Errorf("Gamma(%v,%v) variance = %v, want approx %v", c.alpha, c.beta, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	for _, c := range []struct{ a, b float64 }{{0, 1}, {1, 0}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma(%v,%v) did not panic", c.a, c.b)
				}
			}()
			New(1).Gamma(c.a, c.b)
		}()
	}
}

func TestExpMoments(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(2)
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want approx 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 2, 5, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitDecorrelates(t *testing.T) {
	parent := New(77)
	child := parent.Split()
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split stream matched parent %d times", same)
	}
}

func TestAliasRejectsBadWeights(t *testing.T) {
	cases := [][]float64{
		nil,
		{},
		{0, 0, 0},
		{1, -0.5},
		{math.NaN(), 1},
	}
	for _, w := range cases {
		if _, err := NewAlias(w); err == nil {
			t.Errorf("NewAlias(%v) succeeded, want error", w)
		}
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{0.1, 0.4, 0.2, 0.05, 0.25}
	a, err := NewAlias(weights)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != len(weights) {
		t.Fatalf("N() = %d, want %d", a.N(), len(weights))
	}
	r := New(21)
	const draws = 500000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Draw(r)]++
	}
	for i, w := range weights {
		got := counts[i] / draws
		if math.Abs(got-w) > 0.005 {
			t.Errorf("category %d frequency = %v, want approx %v", i, got, w)
		}
	}
}

func TestAliasUnnormalizedWeights(t *testing.T) {
	a, err := NewAlias([]float64{2, 6}) // 0.25 / 0.75
	if err != nil {
		t.Fatal(err)
	}
	r := New(13)
	const draws = 200000
	var ones int
	for i := 0; i < draws; i++ {
		if a.Draw(r) == 1 {
			ones++
		}
	}
	got := float64(ones) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Errorf("P(1) = %v, want approx 0.75", got)
	}
}

func TestAliasSingleCategory(t *testing.T) {
	a, err := NewAlias([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	r := New(1)
	for i := 0; i < 100; i++ {
		if a.Draw(r) != 0 {
			t.Fatal("single-category alias drew non-zero index")
		}
	}
}

func TestAliasPropertyDrawsInRange(t *testing.T) {
	f := func(raw []float64, seed uint64) bool {
		weights := make([]float64, 0, len(raw))
		for _, w := range raw {
			weights = append(weights, math.Abs(w))
		}
		a, err := NewAlias(weights)
		if err != nil {
			return true // invalid weight vectors are allowed to fail construction
		}
		r := New(seed)
		for i := 0; i < 100; i++ {
			v := a.Draw(r)
			if v < 0 || v >= len(weights) {
				return false
			}
			if weights[v] == 0 {
				return false // zero-weight categories must never be drawn... except round-off
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}

func BenchmarkGamma(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Gamma(1, 2)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	weights := make([]float64, 10)
	for i := range weights {
		weights[i] = float64(i + 1)
	}
	a, err := NewAlias(weights)
	if err != nil {
		b.Fatal(err)
	}
	r := New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Draw(r)
	}
}

// TestStreamDeterministicAndDecorrelated: Stream depends only on (seed, idx),
// distinct indices give distinct streams, and consecutive indices do not
// produce correlated output.
func TestStreamDeterministicAndDecorrelated(t *testing.T) {
	a := Stream(7, 3)
	b := Stream(7, 3)
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Stream(7, 3) is not deterministic")
		}
	}
	// Distinct (seed, idx) pairs must differ, including idx 0 vs New(seed).
	first := map[uint64][2]uint64{}
	for seed := uint64(0); seed < 4; seed++ {
		for idx := uint64(0); idx < 4; idx++ {
			v := Stream(seed, idx).Uint64()
			if prev, ok := first[v]; ok {
				t.Fatalf("Stream(%d, %d) collides with Stream(%d, %d)", seed, idx, prev[0], prev[1])
			}
			first[v] = [2]uint64{seed, idx}
		}
	}
	if Stream(9, 0).Uint64() == New(9).Uint64() {
		t.Fatal("Stream(seed, 0) must not coincide with New(seed)")
	}
	// Crude decorrelation check: the merged output of adjacent streams still
	// looks uniform in the mean.
	var sum float64
	const n = 4000
	for idx := uint64(0); idx < 4; idx++ {
		r := Stream(1, idx)
		for i := 0; i < n; i++ {
			sum += r.Float64()
		}
	}
	if mean := sum / (4 * n); mean < 0.48 || mean > 0.52 {
		t.Fatalf("adjacent streams mean %.4f, want ~0.5", mean)
	}
}
