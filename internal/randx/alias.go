package randx

import (
	"errors"
	"fmt"
)

// Alias samples from a fixed discrete distribution in O(1) per draw using
// Vose's alias method. Construction is O(n).
type Alias struct {
	prob  []float64
	alias []int
}

// ErrBadWeights reports that a discrete distribution could not be built.
var ErrBadWeights = errors.New("randx: weights must be non-negative with a positive sum")

// NewAlias builds an alias table for the given non-negative weights. The
// weights need not sum to one; they are normalized internally.
func NewAlias(weights []float64) (*Alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("%w: empty weight slice", ErrBadWeights)
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || w != w { // negative or NaN
			return nil, fmt.Errorf("%w: weight[%d] = %v", ErrBadWeights, i, w)
		}
		sum += w
	}
	if sum <= 0 {
		return nil, fmt.Errorf("%w: sum = %v", ErrBadWeights, sum)
	}

	a := &Alias{
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		// Only reachable through floating-point round-off; treat as full.
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// N returns the number of categories in the distribution.
func (a *Alias) N() int { return len(a.prob) }

// Draw returns a category index distributed according to the table's weights.
func (a *Alias) Draw(r *Source) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
