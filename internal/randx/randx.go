// Package randx provides the deterministic random-number substrate used by
// every stochastic component in this repository: the data-set generators, the
// randomized-response disguise operator, and the evolutionary optimizer.
//
// The paper does not name a generator, so we hand-roll a small, fast, well
// understood one: xoshiro256++ seeded through splitmix64. Every experiment in
// this repository takes an explicit seed, which makes all published numbers
// reproducible bit-for-bit.
package randx

import (
	"math"
	"math/bits"
)

// Source is a deterministic pseudo-random source implementing xoshiro256++.
// The zero value is not usable; construct one with New.
type Source struct {
	s [4]uint64

	// cached spare normal variate for Box–Muller.
	hasSpare bool
	spare    float64
}

// New returns a Source seeded from seed via splitmix64, which guarantees the
// internal state is never all-zero and decorrelates nearby seeds.
func New(seed uint64) *Source {
	r := &Source{}
	r.Seed(seed)
	return r
}

// Seed resets the source to the deterministic state derived from seed.
func (r *Source) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	r.hasSpare = false
}

// Uint64 returns the next 64 uniformly random bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[0]+s[3], 23) + s[0]
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	// 53 high-quality bits -> [0,1) with full double precision.
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn called with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := bits.Mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = bits.Mul64(x, bound)
		}
	}
	return int(hi)
}

// Norm returns a standard normal variate via the Box–Muller transform.
// Variates are generated in pairs; the spare is cached.
func (r *Source) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// Gamma returns a Gamma(alpha, beta) variate where alpha is the shape and
// beta the scale (mean alpha*beta), using the Marsaglia–Tsang method. It
// panics if alpha or beta is not positive.
func (r *Source) Gamma(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic("randx: Gamma requires positive shape and scale")
	}
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(alpha+1, beta) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.Norm()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * beta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * beta
		}
	}
}

// Exp returns an exponential variate with the given rate (lambda).
func (r *Source) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("randx: Exp requires a positive rate")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u) / rate
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle randomizes the order of n elements using the provided swap.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Split returns a new Source whose stream is decorrelated from r's but fully
// determined by r's current state. It is the deterministic analogue of
// handing a child goroutine its own generator.
func (r *Source) Split() *Source {
	return New(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Stream returns the idx-th member of a family of decorrelated sources
// derived from one root seed. Unlike Split, the result depends only on
// (seed, idx) — not on any generator state — which is what the parallel
// batch kernels need: work split into fixed chunks, chunk i always drawing
// from Stream(seed, i), gives output independent of how many workers run
// the chunks. idx is stirred through a splitmix64 round before mixing so
// that consecutive indices land far apart in seed space.
func Stream(seed, idx uint64) *Source {
	return New(StreamSeed(seed, idx))
}

// StreamSeed returns the root seed of Stream(seed, idx) — the same
// decorrelated family, exposed as a plain seed value for components that
// carry seeds rather than sources (e.g. a sub-optimizer Config whose own
// New re-derives the generator). Stream(seed, idx) and
// New(StreamSeed(seed, idx)) are the same source.
func StreamSeed(seed, idx uint64) uint64 {
	z := idx + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return seed ^ z
}
