#!/usr/bin/env bash
# ci.sh — the repository's full check suite. Run it from anywhere; it cds to
# the repo root. Fails fast on the first broken stage.
#
#   formatting   gofmt -l over all tracked Go files
#   analysis     go vet ./...
#   build        go build ./...
#   tests        go test ./...
#   race         go test -race over the concurrency-critical packages
#   bench smoke  one iteration of the BenchmarkOptimize pair, written to
#                BENCH_optimize.json (untraced vs fully-traced search)
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (collector, core) =="
go test -race ./internal/collector ./internal/core

echo "== bench smoke =="
go test -run '^$' -bench '^BenchmarkOptimize' -benchtime=1x . | tee BENCH_optimize.txt
# Render the benchmark lines ("BenchmarkName  iters  value unit ...") as a
# JSON array so downstream tooling can diff runs.
awk '
BEGIN { printf "[" }
/^Benchmark/ {
    if (n++) printf ","
    printf "{\"name\":\"%s\",\"iterations\":%s", $1, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_@.\/-]/, "", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf "}"
}
END { printf "]\n" }
' BENCH_optimize.txt > BENCH_optimize.json
rm -f BENCH_optimize.txt
echo "bench results: BENCH_optimize.json"

echo "== ci OK =="
