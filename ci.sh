#!/usr/bin/env bash
# ci.sh — the repository's full check suite. Run it from anywhere; it cds to
# the repo root. Fails fast on the first broken stage.
#
#   formatting   gofmt -l over all tracked Go files
#   analysis     go vet ./...; staticcheck when installed (gating)
#   build        go build ./...
#   tests        go test ./...
#   race           go test -race over the concurrency-critical packages
#                  (collector, core, obs — metrics and trace recording race
#                  live scrapes by design — plus the rrserver collection
#                  service, its SDK and the sketch scheme) and the
#                  worker-parallel paths (experiment grid, batch
#                  disguise/sampling); the island scheduler and the sharded
#                  and sketch collectors additionally run under -cpu 1,4 to
#                  exercise both the single-P and multi-P schedules
#   fuzz smoke     a short -fuzz burst on the sketch hash→disguise→debias
#                  round trip (estimates stay finite and near-normalized for
#                  arbitrary parameters)
#   bench smoke    the BenchmarkOptimize trio (baseline, traced, island
#                  scaling) plus the hot-path micro-benchmarks (fused
#                  evaluation, extra-objective evaluation, Kronecker-factored
#                  vs dense joint evaluation, the multi-attribute search,
#                  SPEA2 scratch — 2-D and k-dimensional — bound repair,
#                  batch disguise, convergence-snapshot emission, histogram
#                  quantiles) and
#                  the safe-vs-sharded collector contention matrix with the
#                  batched writer, the sketch collector's parallel ingest
#                  and full-domain heavy-hitter scan, and the rrserver HTTP
#                  batch-ingest path (with its p99 batch latency as a custom
#                  metric), at pinned -benchtime/-count with -benchmem, all
#                  rendered into BENCH_optimize.json
#   bench compare  gating diff of the fresh run against the committed
#                  BENCH_optimize.json via cmd/benchdiff: fails the suite on
#                  a >25% ns/op (5% allocs/op, 10% B/op) regression unless
#                  BENCH_ALLOW_REGRESS=1 accepts the new numbers
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "files need gofmt:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== staticcheck =="
# Not part of the baked toolchain; gating when available (the clean state is
# maintained, so any finding is a real defect), skipped when not installed.
if command -v staticcheck >/dev/null 2>&1; then
    staticcheck ./...
else
    echo "staticcheck not installed; skipping"
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (collector, core, obs, rrserver, sketch) =="
go test -race ./internal/collector ./internal/core ./internal/obs \
    ./internal/rrserver ./internal/rrclient ./internal/sketch

echo "== go test -race -cpu 1,4 (islands, collector sharding, joint evaluation) =="
go test -race -cpu 1,4 -run 'Island|Sharded|Writer|Contention|Race|Concurrent|Multi|Joint|Sketch' \
    ./internal/core ./internal/collector ./internal/metrics

echo "== go test -race (parallel paths) =="
go test -race -run 'Parallel|Grid|Batch|Stream|Tuple' \
    ./internal/experiments ./internal/rr ./internal/dataset

echo "== fuzz smoke (sketch round trip) =="
go test -run '^$' -fuzz '^FuzzCMSRoundTrip$' -fuzztime 5s ./internal/sketch

echo "== bench smoke =="
# Iteration counts are pinned (-benchtime=Nx -count=1) so runs are
# comparable: allocation counts become exactly reproducible and wall-time
# noise is bounded by the fixed workload.
go test -run '^$' -bench '^BenchmarkOptimize' -benchtime=3x -count=1 -benchmem . | tee BENCH_optimize.txt
go test -run '^$' -bench '^(BenchmarkEvaluate|BenchmarkMaxPosterior|BenchmarkEvaluateExtraObjectives)$' -benchtime=2000x -count=1 -benchmem ./internal/metrics | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkJointEvaluate$' -benchtime=200x -count=1 -benchmem ./internal/metrics | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkOptimizeMulti$' -benchtime=3x -count=1 -benchmem ./internal/core | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^(BenchmarkAssignFitness|BenchmarkTruncate|BenchmarkAssignFitnessK3)$' -benchtime=50x -count=1 -benchmem ./internal/emoo | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^(BenchmarkRepair|BenchmarkRealizeSteadyState|BenchmarkConvergenceSnapshot)$' -benchtime=2000x -count=1 -benchmem ./internal/core | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkHistogramQuantiles$' -benchtime=2000x -count=1 -benchmem ./internal/obs | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkDisguise$' -benchtime=20x -count=1 -benchmem ./internal/rr | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkCollectorContention' -benchtime=100000x -count=1 -benchmem ./internal/collector | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkSketchIngest$' -benchtime=100000x -count=1 -benchmem ./internal/collector | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkHeavyHitters$' -benchtime=20x -count=1 -benchmem ./internal/collector | tee -a BENCH_optimize.txt
go test -run '^$' -bench '^BenchmarkServerIngest$' -benchtime=100000x -count=1 -benchmem ./internal/rrserver | tee -a BENCH_optimize.txt
# Render the benchmark lines ("BenchmarkName  iters  value unit ...") as a
# JSON array so downstream tooling can diff runs.
awk '
BEGIN { printf "[" }
/^Benchmark/ {
    if (n++) printf ","
    printf "{\"name\":\"%s\",\"iterations\":%s", $1, $2
    for (i = 3; i < NF; i += 2) {
        unit = $(i + 1)
        gsub(/[^A-Za-z0-9_@.\/-]/, "", unit)
        printf ",\"%s\":%s", unit, $i
    }
    printf "}"
}
END { printf "]\n" }
' BENCH_optimize.txt > BENCH_new.json
rm -f BENCH_optimize.txt

echo "== bench compare (gating) =="
if [ -f BENCH_optimize.json ]; then
    if ! go run ./cmd/benchdiff BENCH_optimize.json BENCH_new.json; then
        if [ "${BENCH_ALLOW_REGRESS:-0}" = "1" ]; then
            echo "bench regression accepted (BENCH_ALLOW_REGRESS=1)" >&2
        else
            # Keep the fresh numbers for inspection but leave the committed
            # baseline untouched so a re-run diffs against the same floor.
            echo "bench regression vs committed baseline; fresh run kept in BENCH_new.json" >&2
            echo "re-run with BENCH_ALLOW_REGRESS=1 ./ci.sh to accept the new numbers" >&2
            exit 1
        fi
    fi
else
    echo "no committed baseline; skipping"
fi
mv BENCH_new.json BENCH_optimize.json
echo "bench results: BENCH_optimize.json"

echo "== ci OK =="
