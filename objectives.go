package optrr

import (
	"fmt"
	"math"

	"optrr/internal/metrics"
)

// Pluggable objectives at the public surface. The paper's search optimizes
// the canonical (privacy, utility) pair; ExtraObjectives on Problem appends
// further axes by registry name, turning the front k-dimensional. The
// metrics registry ships "ldp-epsilon" (alias "ldp"), "mutual-information"
// (alias "mi") and "worst-mse"; RegisterObjective adds custom ones.

// Objective is one extra optimization axis; see metrics.Objective for the
// evaluation contract (reuse of the workspace's P* and inverse, finite
// values only).
type Objective = metrics.Objective

// Direction states whether larger or smaller objective values are better.
type Direction = metrics.Direction

// Workspace is the evaluator's scratch space, handed to every Objective so
// its Evaluate can reuse the intermediates of the fused privacy/utility
// evaluation (PStar, Inverse) instead of recomputing them. The alias makes
// the type nameable outside the module, so external code can write
// NewObjective evaluation functions.
type Workspace = metrics.Workspace

// Objective directions.
const (
	// Minimize means smaller values are better.
	Minimize = metrics.Minimize
	// Maximize means larger values are better.
	Maximize = metrics.Maximize
)

// NewObjective wraps an evaluation function as an Objective; register it
// with RegisterObjective to make it addressable by name.
var NewObjective = metrics.NewObjective

// RegisterObjective adds a custom objective to the registry, making its
// name usable in Problem.ExtraObjectives and cmd/optrr -objectives.
func RegisterObjective(o Objective) error { return metrics.RegisterObjective(o) }

// ObjectiveNames returns the sorted names of all registered extra
// objectives.
func ObjectiveNames() []string { return metrics.ObjectiveNames() }

// resolveObjectives maps registry names (or aliases) to objectives,
// rejecting unknown names with the available set in the error.
func resolveObjectives(names []string) ([]metrics.Objective, error) {
	if len(names) == 0 {
		return nil, nil
	}
	objs := make([]metrics.Objective, len(names))
	for i, name := range names {
		o, ok := metrics.ObjectiveByName(name)
		if !ok {
			return nil, fmt.Errorf("optrr: unknown objective %q (registered: %v)", name, metrics.ObjectiveNames())
		}
		objs[i] = o
	}
	return objs, nil
}

// Objectives returns the names of every axis of the result front in point
// order: "privacy", "utility", then the configured extras by canonical
// name.
func (r *Result) Objectives() []string {
	out := make([]string, 0, 2+len(r.objectives))
	out = append(out, "privacy", "utility")
	for _, o := range r.objectives {
		out = append(out, o.Name())
	}
	return out
}

// objectiveAxis resolves an objective name (or registry alias) against the
// result's axes, returning the point index and whether larger raw values
// are better.
func (r *Result) objectiveAxis(name string) (idx int, largerBetter bool, ok bool) {
	switch name {
	case "privacy":
		return 0, true, true
	case "utility":
		return 1, false, true
	}
	if o, found := metrics.ObjectiveByName(name); found {
		name = o.Name()
	}
	for t, o := range r.objectives {
		if o.Name() == name {
			return 2 + t, o.Direction() == Maximize, true
		}
	}
	return 0, false, false
}

// rawValue reads the named axis of front point i in its natural
// orientation: extras are stored canonically (Maximize negated), so they
// are un-negated here.
func (r *Result) rawValue(i, idx int, largerBetter bool) float64 {
	v := r.Front[i].At(idx)
	if idx >= 2 && largerBetter {
		v = -v
	}
	return v
}

// ObjectiveValues returns the named objective's value at every front point
// (index-aligned with Front and Matrices), in the objective's natural
// orientation — a Maximize extra is returned positive even though Points
// store it negated. ok is false if the result has no such axis.
func (r *Result) ObjectiveValues(name string) ([]float64, bool) {
	idx, largerBetter, ok := r.objectiveAxis(name)
	if !ok {
		return nil, false
	}
	out := make([]float64, len(r.Front))
	for i := range r.Front {
		out[i] = r.rawValue(i, idx, largerBetter)
	}
	return out, true
}

// MatrixBest returns the front matrix with the best value of the named
// objective among the points meeting every threshold in atLeast, or
// ok=false if none qualifies (empty front included). "Best" and the
// threshold sense follow each axis's direction: for larger-is-better axes
// (privacy, Maximize extras) best is the maximum and a threshold means
// value ≥ threshold; for smaller-is-better axes (utility, Minimize extras)
// best is the minimum and a threshold means value ≤ threshold. So
//
//	MatrixBest("utility", map[string]float64{"privacy": 0.5})
//
// is MatrixWithPrivacyAtLeast(0.5), and thresholds on "ldp-epsilon" read
// "at most this ε". Points with a NaN value on any involved axis never
// qualify; an unknown objective name (in either argument) returns ok=false.
func (r *Result) MatrixBest(objective string, atLeast map[string]float64) (*Matrix, bool) {
	idx, largerBetter, ok := r.objectiveAxis(objective)
	if !ok {
		return nil, false
	}
	type constraint struct {
		idx          int
		largerBetter bool
		threshold    float64
	}
	cons := make([]constraint, 0, len(atLeast))
	for name, threshold := range atLeast {
		ci, clb, ok := r.objectiveAxis(name)
		if !ok {
			return nil, false
		}
		cons = append(cons, constraint{ci, clb, threshold})
	}
	best := -1
	var bestV float64
	for i := range r.Front {
		qualified := true
		for _, c := range cons {
			v := r.rawValue(i, c.idx, c.largerBetter)
			meets := false
			if c.largerBetter {
				meets = v >= c.threshold
			} else {
				meets = v <= c.threshold
			}
			if math.IsNaN(v) || !meets {
				qualified = false
				break
			}
		}
		if !qualified {
			continue
		}
		v := r.rawValue(i, idx, largerBetter)
		if math.IsNaN(v) {
			continue
		}
		if best == -1 || (largerBetter && v > bestV) || (!largerBetter && v < bestV) {
			best, bestV = i, v
		}
	}
	if best == -1 {
		return nil, false
	}
	return r.matrices[best], true
}
