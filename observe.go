package optrr

import (
	"io"

	"optrr/internal/obs"
)

// This file re-exports the observability layer: a metrics registry with
// expvar publication, structured JSONL run traces, and a debug HTTP server
// (expvar + net/http/pprof). Everything is standard library only, and the
// disabled path (nil Recorder, nil *Metrics) costs nothing.
//
// Wire a trace into a search via Problem.Recorder, live metrics via
// Problem.Metrics, and a collection campaign via Collector.Instrument /
// SafeCollector.Instrument. See the README's "Observability" section for
// the event schema and metric names.

// Recorder consumes structured trace events. Implementations must be safe
// for concurrent use; see NewJSONLRecorder, NewMemoryRecorder,
// MultiRecorder and NopRecorder.
type Recorder = obs.Recorder

// Fields is the payload of one structured event.
type Fields = obs.Fields

// TraceEvent is one captured event (see MemoryRecorder.Events).
type TraceEvent = obs.Event

// JSONLRecorder writes one JSON object per event — the machine-readable
// run-trace format.
type JSONLRecorder = obs.JSONLRecorder

// MemoryRecorder captures events in memory for programmatic consumption.
type MemoryRecorder = obs.MemoryRecorder

// Metrics is a registry of counters, gauges and histograms; publish it via
// its PublishExpvar method or serve it with ServeDebug.
type Metrics = obs.Registry

// DebugServer serves /debug/vars (expvar), /debug/pprof/ and /metrics.
type DebugServer = obs.Server

// NopRecorder returns the recorder that discards everything at zero cost.
func NopRecorder() Recorder { return obs.Nop }

// NewJSONLRecorder returns a recorder writing JSONL trace events to w.
// Call Flush when the run ends.
func NewJSONLRecorder(w io.Writer) *JSONLRecorder { return obs.NewJSONL(w) }

// NewMemoryRecorder returns an in-memory event recorder.
func NewMemoryRecorder() *MemoryRecorder { return obs.NewMemory() }

// MultiRecorder fans events out to every given recorder.
func MultiRecorder(recs ...Recorder) Recorder { return obs.NewMulti(recs...) }

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return obs.NewRegistry() }

// ServeDebug starts a debug HTTP server on addr ("host:port"; ":0" picks a
// free port) exposing expvar, pprof and — when reg is non-nil — the
// registry at /metrics. Close the returned server when done.
func ServeDebug(addr string, reg *Metrics) (*DebugServer, error) {
	return obs.Serve(addr, reg)
}
