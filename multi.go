package optrr

import (
	"fmt"
	"math"
	"sort"

	"optrr/internal/core"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// This file exposes the multi-dimensional extension (the paper's future
// work, Section VII): jointly optimizing one RR matrix per attribute against
// record-level privacy and joint-distribution utility.

// MultiProblem describes a multi-attribute optimization task.
type MultiProblem struct {
	// Joint is the original joint distribution over the product space,
	// row-major with attribute 0 slowest (MultiRR.Index order).
	Joint []float64
	// Sizes lists the per-attribute category counts.
	Sizes []int
	// Records is the data-set size N for the utility metric.
	Records int
	// Delta bounds the record-level posterior max P(X-record | Y-record).
	Delta float64
	// Seed makes the run reproducible.
	Seed uint64
	// Generations overrides the search budget; zero uses the default (300).
	Generations int
	// Workers bounds the evaluation parallelism; zero or negative uses
	// GOMAXPROCS. The result is bit-for-bit identical at every setting.
	Workers int
}

// MultiResult is the outcome of OptimizeMulti.
type MultiResult struct {
	// Front lists the optimal trade-off points, ascending in privacy.
	Front []Point
	// tuples[i] corresponds to Front[i]: one matrix per attribute.
	tuples [][]*Matrix
	// Generations and Evaluations report the search effort spent.
	Generations int
	Evaluations int
}

// Tuples returns the per-attribute matrix tuples, index-aligned with Front.
func (r *MultiResult) Tuples() [][]*Matrix {
	out := make([][]*Matrix, len(r.tuples))
	copy(out, r.tuples)
	return out
}

// TupleWithPrivacyAtLeast returns the tuple with the best joint utility
// among those offering at least the requested record-level privacy.
func (r *MultiResult) TupleWithPrivacyAtLeast(privacy float64) ([]*Matrix, bool) {
	best := -1
	for i, p := range r.Front {
		if p.Privacy >= privacy && (best == -1 || p.Utility < r.Front[best].Utility) {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	return r.tuples[best], true
}

// OptimizeMulti searches for Pareto-optimal per-attribute matrix tuples.
func OptimizeMulti(p MultiProblem) (*MultiResult, error) {
	cfg := core.MultiConfig{
		Joint:       p.Joint,
		Sizes:       p.Sizes,
		Records:     p.Records,
		Delta:       p.Delta,
		Seed:        p.Seed,
		Generations: p.Generations,
		Workers:     p.Workers,
	}
	res, err := core.OptimizeMulti(cfg)
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	// Sort points and tuples together with the FrontPoints comparator, so
	// alignment holds by construction instead of by O(front²) re-matching.
	type pair struct {
		pt    Point
		tuple []*Matrix
	}
	pairs := make([]pair, 0, len(res.Front))
	for _, ind := range res.Front {
		ms, err := ind.Matrices()
		if err != nil {
			return nil, fmt.Errorf("optrr: %w", err)
		}
		pairs = append(pairs, pair{pt: ind.Point(), tuple: ms})
	}
	sort.Slice(pairs, func(a, b int) bool {
		return pareto.Compare(pairs[a].pt, pairs[b].pt) < 0
	})
	out := &MultiResult{
		Front:       make([]Point, len(pairs)),
		tuples:      make([][]*Matrix, len(pairs)),
		Generations: res.Generations,
		Evaluations: res.Evaluations,
	}
	for i, pr := range pairs {
		out.Front[i] = pr.pt
		out.tuples[i] = pr.tuple
	}
	return out, nil
}

// DisguiseMultiBatch disguises multi-attribute records — records[k][d] is
// record k's category on attribute d — applying ms[d] to column d with the
// deterministic chunked batch kernel. The output depends only on
// (ms, records, seed); workers ≤ 0 uses GOMAXPROCS.
func DisguiseMultiBatch(ms []*Matrix, records [][]int, seed uint64, workers int) ([][]int, error) {
	out, err := rr.TupleDisguiseBatch(ms, records, seed, workers)
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	return out, nil
}

// EstimateJointInversion reconstructs the original joint distribution
// (row-major, attribute 0 slowest — MultiRR.Index order) from disguised
// multi-attribute records via the Kronecker-factored inversion estimator
// P̂ = (⊗M_d⁻¹)·P̂*; the joint channel is never materialized. The estimate
// is unbiased but may leave the simplex on small samples; pass it through
// ClipDistribution for a proper distribution.
func EstimateJointInversion(ms []*Matrix, disguised [][]int) ([]float64, error) {
	est, err := rr.TupleEstimateJoint(ms, disguised)
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	return est, nil
}

// JointPrivacy returns the record-level privacy of disguising each attribute
// independently with the given matrices, under the joint prior.
func JointPrivacy(ms []*Matrix, joint []float64) (float64, error) {
	return metrics.JointPrivacy(ms, joint)
}

// JointUtility returns the average closed-form MSE of the reconstructed
// joint distribution.
func JointUtility(ms []*Matrix, joint []float64, records int) (float64, error) {
	return metrics.JointUtility(ms, joint, records)
}

// JointMaxPosterior returns the worst-case record-level posterior.
func JointMaxPosterior(ms []*Matrix, joint []float64) (float64, error) {
	return metrics.JointMaxPosterior(ms, joint)
}

// ConfidenceIntervals returns per-category half-widths of approximate
// normal confidence intervals for an inversion estimate produced by m over
// a data set of the given size: halfWidth[k] = z·sqrt(MSE_k) with MSE_k the
// closed-form per-category variance of Theorem 6 evaluated at the estimated
// distribution. z = 1.96 gives ~95% intervals. The estimate is clipped onto
// the simplex for the variance evaluation.
func ConfidenceIntervals(m *Matrix, estimate []float64, records int, z float64) ([]float64, error) {
	if z <= 0 {
		return nil, fmt.Errorf("optrr: z must be positive, got %v", z)
	}
	clipped := rr.Clip(estimate)
	mses, err := metrics.PerCategoryMSE(m, clipped, records)
	if err != nil {
		return nil, fmt.Errorf("optrr: %w", err)
	}
	out := make([]float64, len(mses))
	for k, v := range mses {
		if v > 0 {
			out[k] = z * math.Sqrt(v)
		}
	}
	return out, nil
}
