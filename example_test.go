package optrr_test

// Runnable godoc examples for the public API. Deterministic seeds make the
// outputs stable, so each doubles as a regression test.

import (
	"fmt"

	"optrr"
)

// ExampleWarner shows the classic scheme: disguise records, reconstruct the
// distribution.
func ExampleWarner() {
	m, err := optrr.Warner(3, 0.8)
	if err != nil {
		panic(err)
	}
	// Exact round trip on the true distribution: P* = M·P, P = M⁻¹·P*.
	prior := []float64{0.5, 0.3, 0.2}
	pStar, err := m.DisguisedDistribution(prior)
	if err != nil {
		panic(err)
	}
	back, err := m.EstimateInversionFromDistribution(pStar)
	if err != nil {
		panic(err)
	}
	fmt.Printf("disguised: %.3f %.3f %.3f\n", pStar[0], pStar[1], pStar[2])
	fmt.Printf("recovered: %.3f %.3f %.3f\n", back[0], back[1], back[2])
	// Output:
	// disguised: 0.450 0.310 0.240
	// recovered: 0.500 0.300 0.200
}

// ExampleEvaluate quantifies a matrix's privacy/utility trade-off.
func ExampleEvaluate() {
	m, err := optrr.Warner(4, 0.7)
	if err != nil {
		panic(err)
	}
	prior := []float64{0.4, 0.3, 0.2, 0.1}
	ev, err := optrr.Evaluate(m, prior, 10000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("privacy %.3f, worst-case posterior %.3f\n", ev.Privacy, ev.MaxPosterior)
	// Output:
	// privacy 0.300, worst-case posterior 0.824
}

// ExampleOptimize runs a small OptRR search and picks a matrix meeting a
// privacy requirement.
func ExampleOptimize() {
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       []float64{0.5, 0.3, 0.2},
		Records:     10000,
		Delta:       0.85,
		Seed:        1,
		Generations: 400,
	})
	if err != nil {
		panic(err)
	}
	m, ok := res.MatrixWithPrivacyAtLeast(0.4)
	if !ok {
		panic("no matrix at privacy 0.4")
	}
	priv, err := optrr.Privacy(m, []float64{0.5, 0.3, 0.2})
	if err != nil {
		panic(err)
	}
	fmt.Printf("found a matrix with privacy >= 0.4: %v\n", priv >= 0.4)
	// Output:
	// found a matrix with privacy >= 0.4: true
}

// ExampleMutualInformation cross-checks leakage with an information-theoretic
// metric.
func ExampleMutualInformation() {
	prior := []float64{0.5, 0.5}
	id := optrr.Identity(2)
	mi, err := optrr.MutualInformation(id, prior)
	if err != nil {
		panic(err)
	}
	fmt.Printf("identity leaks %.1f bit\n", mi)
	m, err := optrr.Warner(2, 0.5) // totally random for n=2? p=0.5 gives uniform output
	if err != nil {
		panic(err)
	}
	mi, err = optrr.MutualInformation(m, prior)
	if err != nil {
		panic(err)
	}
	fmt.Printf("coin-flip disguise leaks %.1f bits\n", mi)
	// Output:
	// identity leaks 1.0 bit
	// coin-flip disguise leaks 0.0 bits
}

// ExampleNewCollector shows the collection workflow: respondents randomize
// locally, the collector reconstructs with confidence intervals.
func ExampleNewCollector() {
	m, err := optrr.Warner(2, 0.75)
	if err != nil {
		panic(err)
	}
	rng := optrr.NewRand(1965)
	c := optrr.NewCollector(m)
	// 20,000 respondents, 12% with the sensitive trait.
	for i := 0; i < 20000; i++ {
		value := 0
		if rng.Float64() < 0.12 {
			value = 1
		}
		r, err := optrr.NewRespondent(m, value)
		if err != nil {
			panic(err)
		}
		if err := c.Ingest(r.Report(rng)); err != nil {
			panic(err)
		}
	}
	s, err := c.Snapshot(1.96)
	if err != nil {
		panic(err)
	}
	covered := s.Estimate[1]-s.HalfWidth[1] <= 0.12 && 0.12 <= s.Estimate[1]+s.HalfWidth[1]
	fmt.Printf("true rate inside the 95%% interval: %v\n", covered)
	// Output:
	// true rate inside the 95% interval: true
}

// ExampleBreachesPrivacy screens a matrix for amplification-style breaches.
func ExampleBreachesPrivacy() {
	prior := []float64{0.9, 0.1}
	// The identity matrix exposes the rare value completely: observing it
	// raises its posterior from 0.1 to 1.0 — a (0.2, 0.8) breach.
	x, _, err := optrr.BreachesPrivacy(optrr.Identity(2), prior, 0.2, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("identity breaches at rare value %d: %v\n", x, x >= 0)
	// A moderately noisy Warner matrix keeps the rare value's posterior
	// under 0.8: no breach.
	safe, err := optrr.Warner(2, 0.6)
	if err != nil {
		panic(err)
	}
	x, _, err = optrr.BreachesPrivacy(safe, prior, 0.2, 0.8)
	if err != nil {
		panic(err)
	}
	fmt.Printf("warner(0.6) breaches: %v\n", x >= 0)
	// Output:
	// identity breaches at rare value 1: true
	// warner(0.6) breaches: false
}
