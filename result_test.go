package optrr

import (
	"math"
	"testing"

	"optrr/internal/core"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
)

// fakeResult builds a Result directly from points, with distinguishable
// (nil-keyed by index is enough) matrices so selectors can be identified.
func fakeResult(t *testing.T, extras []string, pts ...Point) (*Result, []*Matrix) {
	t.Helper()
	objs, err := resolveObjectives(extras)
	if err != nil {
		t.Fatal(err)
	}
	ms := make([]*Matrix, len(pts))
	for i := range ms {
		ms[i] = Identity(2 + i) // distinct sizes make each matrix identifiable
	}
	return &Result{Front: pts, matrices: ms, objectives: objs}, ms
}

// TestMatrixSelectorsEmptyFront pins the empty-front contract of every
// selector: ok=false, no panic.
func TestMatrixSelectorsEmptyFront(t *testing.T) {
	res, _ := fakeResult(t, nil)
	if _, ok := res.MatrixWithPrivacyAtLeast(0); ok {
		t.Fatal("privacy selector matched on empty front")
	}
	if _, ok := res.MatrixWithUtilityAtMost(math.Inf(1)); ok {
		t.Fatal("utility selector matched on empty front")
	}
	if _, ok := res.MatrixBest("privacy", nil); ok {
		t.Fatal("MatrixBest matched on empty front")
	}
}

// TestMatrixSelectorsExactThreshold pins that thresholds are inclusive: a
// point exactly at the requested level qualifies.
func TestMatrixSelectorsExactThreshold(t *testing.T) {
	res, ms := fakeResult(t, nil,
		pareto.NewPoint(0.3, 1e-4),
		pareto.NewPoint(0.5, 2e-4),
		pareto.NewPoint(0.7, 8e-4),
	)
	m, ok := res.MatrixWithPrivacyAtLeast(0.5)
	if !ok || m != ms[1] {
		t.Fatalf("privacy ≥ 0.5: got %v ok=%v, want the exact-threshold point", m, ok)
	}
	m, ok = res.MatrixWithUtilityAtMost(2e-4)
	if !ok || m != ms[1] {
		t.Fatalf("utility ≤ 2e-4: got %v ok=%v, want the exact-threshold point", m, ok)
	}
	m, ok = res.MatrixBest("utility", map[string]float64{"privacy": 0.7})
	if !ok || m != ms[2] {
		t.Fatalf("MatrixBest exact threshold: got %v ok=%v", m, ok)
	}
}

// TestMatrixSelectorsAllFiltered pins ok=false when every point fails the
// threshold.
func TestMatrixSelectorsAllFiltered(t *testing.T) {
	res, _ := fakeResult(t, nil,
		pareto.NewPoint(0.3, 1e-4),
		pareto.NewPoint(0.5, 2e-4),
	)
	if _, ok := res.MatrixWithPrivacyAtLeast(0.9); ok {
		t.Fatal("unreachable privacy level matched")
	}
	if _, ok := res.MatrixWithUtilityAtMost(1e-5); ok {
		t.Fatal("unreachable utility level matched")
	}
	if _, ok := res.MatrixBest("utility", map[string]float64{"privacy": 0.9}); ok {
		t.Fatal("MatrixBest matched with unsatisfiable constraint")
	}
}

// TestMatrixBestGeneralized covers the k-dim selector: direction-aware
// best, multi-constraint filtering, alias resolution, NaN exclusion and
// unknown names.
func TestMatrixBestGeneralized(t *testing.T) {
	// Extra axis: ldp-epsilon (Minimize), stored canonically as-is.
	res, ms := fakeResult(t, []string{"ldp-epsilon"},
		pareto.NewPoint(0.3, 1e-4, 2.0),
		pareto.NewPoint(0.5, 2e-4, 1.2),
		pareto.NewPoint(0.7, 8e-4, 0.6),
	)

	// Best (minimum) epsilon unconstrained: the last point.
	m, ok := res.MatrixBest("ldp-epsilon", nil)
	if !ok || m != ms[2] {
		t.Fatalf("best epsilon: got %v ok=%v", m, ok)
	}
	// Alias resolves to the same axis.
	m, ok = res.MatrixBest("ldp", nil)
	if !ok || m != ms[2] {
		t.Fatalf("alias lookup: got %v ok=%v", m, ok)
	}
	// Max privacy subject to ε ≤ 1.2 and utility ≤ 2e-4: the middle point.
	m, ok = res.MatrixBest("privacy", map[string]float64{"ldp": 1.2, "utility": 2e-4})
	if !ok || m != ms[1] {
		t.Fatalf("constrained privacy: got %v ok=%v", m, ok)
	}
	// Unknown names fail closed, in both positions.
	if _, ok := res.MatrixBest("no-such", nil); ok {
		t.Fatal("unknown objective matched")
	}
	if _, ok := res.MatrixBest("privacy", map[string]float64{"no-such": 1}); ok {
		t.Fatal("unknown constraint matched")
	}

	// NaN values never qualify, as best or under constraints.
	res, ms = fakeResult(t, []string{"ldp-epsilon"},
		pareto.NewPoint(0.3, 1e-4, math.NaN()),
		pareto.NewPoint(0.5, 2e-4, 1.0),
	)
	m, ok = res.MatrixBest("ldp-epsilon", nil)
	if !ok || m != ms[1] {
		t.Fatalf("NaN as best candidate: got %v ok=%v", m, ok)
	}
	m, ok = res.MatrixBest("privacy", map[string]float64{"ldp-epsilon": 5})
	if !ok || m != ms[1] {
		t.Fatalf("NaN under constraint: got %v ok=%v", m, ok)
	}
}

// TestObjectiveValuesOrientation checks name listing and the raw (natural
// orientation) read-back, including un-negation of Maximize extras.
func TestObjectiveValuesOrientation(t *testing.T) {
	if err := RegisterObjective(NewObjective("t-gain", Maximize,
		func(*metrics.Workspace, *Matrix, []float64, int) (float64, error) { return 0, nil })); err != nil {
		t.Fatal(err)
	}
	// Canonical storage negates Maximize values: raw 0.8 is stored -0.8.
	res, _ := fakeResult(t, []string{"t-gain"},
		pareto.NewPoint(0.3, 1e-4, -0.8),
		pareto.NewPoint(0.5, 2e-4, -0.2),
	)
	names := res.Objectives()
	want := []string{"privacy", "utility", "t-gain"}
	if len(names) != len(want) {
		t.Fatalf("Objectives() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Objectives() = %v, want %v", names, want)
		}
	}
	vals, ok := res.ObjectiveValues("t-gain")
	if !ok || vals[0] != 0.8 || vals[1] != 0.2 {
		t.Fatalf("ObjectiveValues(t-gain) = %v ok=%v, want [0.8 0.2]", vals, ok)
	}
	vals, ok = res.ObjectiveValues("privacy")
	if !ok || vals[0] != 0.3 || vals[1] != 0.5 {
		t.Fatalf("ObjectiveValues(privacy) = %v ok=%v", vals, ok)
	}
	if _, ok := res.ObjectiveValues("no-such"); ok {
		t.Fatal("unknown objective resolved")
	}
	// Maximize constraint semantics: ≥ threshold on the raw value.
	if _, ok := res.MatrixBest("utility", map[string]float64{"t-gain": 0.5}); !ok {
		t.Fatal("gain ≥ 0.5 should match the first point")
	}
	if _, ok := res.MatrixBest("utility", map[string]float64{"t-gain": 0.9}); ok {
		t.Fatal("gain ≥ 0.9 should match nothing")
	}
}

// TestOptimizeTriObjectiveEndToEnd drives the public API with extra
// objectives: Problem.ExtraObjectives (with an alias), a 3-D front, and
// name-addressed accessors over a real run.
func TestOptimizeTriObjectiveEndToEnd(t *testing.T) {
	res, err := Optimize(Problem{
		Prior:       []float64{0.5, 0.3, 0.2},
		Records:     10000,
		Delta:       0.75,
		Seed:        3,
		Generations: 20,
		Advanced: &core.Config{
			PopulationSize: 16,
			ArchiveSize:    16,
			OmegaSize:      200,
			Normalize:      true,
		},
		ExtraObjectives: []string{"ldp"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	for i, p := range res.Front {
		if p.Dim() != 3 {
			t.Fatalf("front[%d]: dim %d, want 3", i, p.Dim())
		}
	}
	eps, ok := res.ObjectiveValues("ldp-epsilon")
	if !ok || len(eps) != len(res.Front) {
		t.Fatalf("ObjectiveValues: ok=%v len=%d", ok, len(eps))
	}
	for i, e := range eps {
		if math.IsNaN(e) || e < 0 || e > metrics.LDPEpsilonCap {
			t.Fatalf("front[%d]: epsilon %v", i, e)
		}
	}
	if m, ok := res.MatrixBest("ldp-epsilon", map[string]float64{"privacy": res.Front[0].Privacy}); !ok || m == nil {
		t.Fatal("MatrixBest over a live run failed")
	}
	if _, err := Optimize(Problem{
		Prior: []float64{0.5, 0.5}, Records: 100, Delta: 0.9,
		ExtraObjectives: []string{"definitely-not-registered"},
	}); err == nil {
		t.Fatal("unknown objective name accepted")
	}
}
