package optrr_test

import (
	"testing"

	"optrr"
	"optrr/internal/randx"
)

// TestSketchPublicSurface drives the exported sketch API end to end: scheme
// construction, local disguising, collection, snapshot round trip, and
// heavy-hitter discovery — the large-domain workflow a library user follows.
func TestSketchPublicSurface(t *testing.T) {
	scheme, err := optrr.NewSketchSchemeKRR(30000, 12, 128, 5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if v, err := optrr.SchemeVersion(scheme); err != nil || v == "" {
		t.Fatalf("SchemeVersion = %q, %v", v, err)
	}

	rng := randx.New(4)
	records := make([]int, 100000)
	for i := range records {
		if rng.Intn(3) != 0 {
			records[i] = rng.Intn(3) // two thirds of mass on 3 heavy categories
		} else {
			records[i] = rng.Intn(30000)
		}
	}
	reports := make([]int, len(records))
	if err := scheme.DisguiseBatchInto(reports, records, 8, 0); err != nil {
		t.Fatal(err)
	}

	col := optrr.NewSketchCollector(scheme, 0)
	if err := col.IngestBatch(reports); err != nil {
		t.Fatal(err)
	}
	hits, err := optrr.TopK(col, 3)
	if err != nil {
		t.Fatal(err)
	}
	found := map[int]bool{}
	for _, h := range hits {
		found[h.Category] = true
	}
	for x := 0; x < 3; x++ {
		if !found[x] {
			t.Fatalf("heavy category %d missing from top-3 %v", x, hits)
		}
	}

	// Snapshot round trip through the envelope codec.
	data, err := col.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := optrr.RestoreSketchCollector(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	if back.Count() != col.Count() {
		t.Fatalf("restored count %d, want %d", back.Count(), col.Count())
	}

	env, err := optrr.MarshalScheme(scheme)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := optrr.UnmarshalScheme(env)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Kind() != scheme.Kind() || decoded.Domain() != scheme.Domain() {
		t.Fatalf("envelope round trip: kind %q domain %d", decoded.Kind(), decoded.Domain())
	}
}
