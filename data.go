package optrr

import (
	"io"

	"optrr/internal/dataset"
	"optrr/internal/randx"
)

// This file re-exports the tabular data layer used by the mining consumers.

// Table is a multi-attribute categorical data set with named attributes and
// category labels.
type Table = dataset.Table

// Attribute describes one table column: its name and category labels.
type Attribute = dataset.Attribute

// NewTable creates an empty table with the given schema.
func NewTable(attrs []Attribute) (*Table, error) { return dataset.NewTable(attrs) }

// ReadTableCSV parses a table from CSV (header row required). With a nil
// schema, each column's domain is inferred from the data.
func ReadTableCSV(r io.Reader, schema []Attribute) (*Table, error) {
	return dataset.ReadCSV(r, schema)
}

// SyntheticTable draws rows from an explicit joint distribution over the
// schema (row-major, attribute 0 slowest).
func SyntheticTable(attrs []Attribute, joint []float64, rows int, rng *randx.Source) (*Table, error) {
	return dataset.SyntheticTable(attrs, joint, rows, rng)
}
