package optrr

import (
	"optrr/internal/collector"
	"optrr/internal/rrclient"
)

// This file re-exports the serving layer: the respondent-side disguise SDK
// for the LDP collection service (cmd/rrserver), the buffered collector
// writer, and the typed errors a long-lived collection deployment handles.

// CollectionClient is the respondent-side SDK for a running rrserver: it
// fetches the deployed disguise matrix once, samples the disguise locally,
// and reports only the disguised category. Safe for concurrent use.
type CollectionClient = rrclient.Client

// CollectionClientOption configures a CollectionClient (see
// WithCollectionHTTPClient and WithCollectionSeed).
type CollectionClientOption = rrclient.Option

// NewCollectionClient returns a client for the rrserver at baseURL, e.g.
// "http://127.0.0.1:8433". No network traffic happens until the first call.
func NewCollectionClient(baseURL string, opts ...CollectionClientOption) *CollectionClient {
	return rrclient.New(baseURL, opts...)
}

// WithCollectionHTTPClient substitutes the SDK's underlying HTTP client.
var WithCollectionHTTPClient = rrclient.WithHTTPClient

// WithCollectionSeed makes the SDK's disguise draws deterministic — for
// tests and simulations only.
var WithCollectionSeed = rrclient.WithSeed

// CollectorWriter buffers reports for a ShardedCollector and flushes them in
// batches, amortizing per-report synchronization. Close flushes and retires
// the writer; both Flush and Close are idempotent.
type CollectorWriter = collector.Writer

// Typed collection errors, for errors.Is checks at the campaign layer.
var (
	// ErrBadReport reports a disguised category outside the matrix domain.
	ErrBadReport = collector.ErrBadReport
	// ErrNoReports reports a query against an empty collector.
	ErrNoReports = collector.ErrNoReports
	// ErrBadSnapshot reports a corrupt or inconsistent collector snapshot
	// handed to RestoreShardedCollector.
	ErrBadSnapshot = collector.ErrBadSnapshot
	// ErrBadMargin reports a non-positive or non-finite target margin.
	ErrBadMargin = collector.ErrBadMargin
	// ErrWriterClosed reports an ingest through a closed CollectorWriter.
	ErrWriterClosed = collector.ErrWriterClosed
)
