package optrr_test

// Integration tests: every flow a downstream user runs, exercised through
// the public API only (external test package), crossing module boundaries
// end to end — optimize → disguise → reconstruct → mine.

import (
	"math"
	"testing"

	"optrr"
)

// sampleFrom draws n records from a categorical distribution.
func sampleFrom(prior []float64, n int, rng *optrr.Rand) []int {
	cum := make([]float64, len(prior))
	s := 0.0
	for i, p := range prior {
		s += p
		cum[i] = s
	}
	out := make([]int, n)
	for i := range out {
		u := rng.Float64()
		out[i] = len(prior) - 1
		for k, c := range cum {
			if u <= c {
				out[i] = k
				break
			}
		}
	}
	return out
}

// TestIntegrationOptimizeDisguiseReconstruct is the paper's end-to-end
// promise: a matrix from the optimized front protects individuals to the
// stated bound while the aggregate distribution reconstructs within the
// error the utility metric predicts.
func TestIntegrationOptimizeDisguiseReconstruct(t *testing.T) {
	prior := []float64{0.35, 0.25, 0.18, 0.12, 0.10}
	const records = 20000
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     records,
		Delta:       0.75,
		Seed:        11,
		Generations: 600,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.MatrixWithPrivacyAtLeast(0.5)
	if !ok {
		t.Fatal("no matrix with privacy >= 0.5")
	}

	rng := optrr.NewRand(12)
	originals := sampleFrom(prior, records, rng)
	disguised, err := m.Disguise(originals, rng)
	if err != nil {
		t.Fatal(err)
	}

	// Reconstruction lands near the truth, within a few predicted standard
	// errors per category.
	est, err := m.EstimateInversion(disguised)
	if err != nil {
		t.Fatal(err)
	}
	half, err := optrr.ConfidenceIntervals(m, est, records, 3.5) // ~99.95%
	if err != nil {
		t.Fatal(err)
	}
	for k := range prior {
		if math.Abs(est[k]-prior[k]) > half[k]+0.01 {
			t.Errorf("category %d: estimate %v vs true %v exceeds CI %v", k, est[k], prior[k], half[k])
		}
	}

	// The bound holds against the actual adversary: simulate MAP guessing
	// and verify no more accurate than delta per record on average of the
	// best-case disguised value.
	mp, err := optrr.MaxPosterior(m, prior)
	if err != nil {
		t.Fatal(err)
	}
	if mp > 0.75+1e-9 {
		t.Fatalf("max posterior %v exceeds bound", mp)
	}

	// Iterative reconstruction agrees with inversion on this data.
	iter, err := m.EstimateIterative(disguised, optrr.IterativeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for k := range prior {
		if math.Abs(iter[k]-est[k]) > 0.02 {
			t.Errorf("category %d: iterative %v vs inversion %v", k, iter[k], est[k])
		}
	}
}

// TestIntegrationFrontBeatsClassicSchemes: every point of the optimized
// front weakly improves on Warner, UP and FRAPP at its own privacy level.
func TestIntegrationFrontBeatsClassicSchemes(t *testing.T) {
	prior := []float64{0.4, 0.25, 0.15, 0.12, 0.08}
	const (
		records = 10000
		delta   = 0.8
	)
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     records,
		Delta:       delta,
		Seed:        21,
		Generations: 1200,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Classic schemes' best feasible utility at each privacy level.
	classicBest := func(privacy float64) (float64, bool) {
		best := math.Inf(1)
		found := false
		for k := 0; k <= 500; k++ {
			p := float64(k) / 500
			for _, build := range []func() (*optrr.Matrix, error){
				func() (*optrr.Matrix, error) { return optrr.Warner(len(prior), p) },
				func() (*optrr.Matrix, error) { return optrr.UniformPerturbation(len(prior), p) },
				func() (*optrr.Matrix, error) { return optrr.FRAPP(len(prior), p*20+0.01) },
			} {
				m, err := build()
				if err != nil {
					continue
				}
				mp, err := optrr.MaxPosterior(m, prior)
				if err != nil || mp > delta {
					continue
				}
				ev, err := optrr.Evaluate(m, prior, records)
				if err != nil {
					continue
				}
				if ev.Privacy >= privacy && ev.Utility < best {
					best = ev.Utility
					found = true
				}
			}
		}
		return best, found
	}

	// Probe three levels inside the optimized front's range.
	lo := res.Front[0].Privacy
	hi := res.Front[len(res.Front)-1].Privacy
	for _, frac := range []float64{0.3, 0.5, 0.8} {
		level := lo + (hi-lo)*frac
		classic, ok := classicBest(level)
		if !ok {
			continue
		}
		m, ok := res.MatrixWithPrivacyAtLeast(level)
		if !ok {
			t.Fatalf("front lost privacy level %v", level)
		}
		util, err := optrr.Utility(m, prior, records)
		if err != nil {
			t.Fatal(err)
		}
		if util > classic*1.05 {
			t.Errorf("privacy %.2f: optimized MSE %.3e worse than classic %.3e", level, util, classic)
		}
	}
}

// TestIntegrationMultiDimensionalPipeline: optimize per-attribute matrices,
// disguise a correlated two-attribute data set, reconstruct the joint and
// mine a decision tree from it.
func TestIntegrationMultiDimensionalPipeline(t *testing.T) {
	// Correlated world over [3, 2]: attribute 1 tends to equal (attr 0 > 0).
	joint := []float64{0.25, 0.05, 0.10, 0.20, 0.05, 0.35}
	sizes := []int{3, 2}

	res, err := optrr.OptimizeMulti(optrr.MultiProblem{
		Joint:       joint,
		Sizes:       sizes,
		Records:     30000,
		Delta:       0.8,
		Seed:        31,
		Generations: 150,
	})
	if err != nil {
		t.Fatal(err)
	}
	tuple, ok := res.TupleWithPrivacyAtLeast(res.Front[0].Privacy)
	if !ok {
		t.Fatal("no tuple")
	}

	mr, err := optrr.NewMultiRR(tuple...)
	if err != nil {
		t.Fatal(err)
	}
	rng := optrr.NewRand(32)
	flat := sampleFrom(joint, 30000, rng)
	records := make([][]int, len(flat))
	for i, idx := range flat {
		records[i] = mr.Unindex(idx)
	}
	disguised, err := mr.Disguise(records, rng)
	if err != nil {
		t.Fatal(err)
	}
	est, err := mr.EstimateJoint(disguised)
	if err != nil {
		t.Fatal(err)
	}
	var worst float64
	for i := range joint {
		if d := math.Abs(est[i] - joint[i]); d > worst {
			worst = d
		}
	}
	if worst > 0.05 {
		t.Fatalf("joint reconstruction worst-cell error %v", worst)
	}

	// Grow a tree for attribute 1 from the reconstructed joint and verify
	// it recovers the dominant correlation on clean data.
	tree, err := optrr.BuildTree(mr, est, 1, optrr.TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	acc, err := tree.Accuracy(records)
	if err != nil {
		t.Fatal(err)
	}
	// Majority-class baseline for attribute 1 under this joint is 0.60;
	// using attribute 0 pushes the Bayes rate to 0.75.
	if acc < 0.7 {
		t.Fatalf("tree accuracy %v, want >= 0.7", acc)
	}
}

// TestIntegrationSeededReproducibility: the same problem and seed produce
// identical fronts across separate Optimize calls (cross-package
// determinism, including the parallel evaluator).
func TestIntegrationSeededReproducibility(t *testing.T) {
	problem := optrr.Problem{
		Prior:       []float64{0.5, 0.3, 0.2},
		Records:     2000,
		Delta:       0.9,
		Seed:        99,
		Generations: 200,
	}
	a, err := optrr.Optimize(problem)
	if err != nil {
		t.Fatal(err)
	}
	b, err := optrr.Optimize(problem)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Front) != len(b.Front) {
		t.Fatalf("front sizes differ: %d vs %d", len(a.Front), len(b.Front))
	}
	for i := range a.Front {
		if a.Front[i] != b.Front[i] {
			t.Fatalf("fronts differ at %d: %v vs %v", i, a.Front[i], b.Front[i])
		}
	}
}
