package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden files from current output")

// golden runs one rrtrace invocation and compares it against the committed
// expectation. Every input is a fixed testdata trace, so the output is
// deterministic byte for byte; regenerate with -update-golden after an
// intended format change.
func golden(t *testing.T, goldenName string, args ...string) {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	path := filepath.Join("testdata", goldenName)
	if *updateGolden {
		if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test ./cmd/rrtrace -update-golden): %v", err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, out.Bytes(), want)
	}
}

func TestSummaryGolden(t *testing.T) {
	golden(t, "summary.golden", "summary", filepath.Join("testdata", "cold.jsonl"))
}

func TestCurveGolden(t *testing.T) {
	golden(t, "curve.golden", "curve", filepath.Join("testdata", "cold.jsonl"))
}

func TestCompareGolden(t *testing.T) {
	golden(t, "compare.golden", "compare",
		filepath.Join("testdata", "cold.jsonl"), filepath.Join("testdata", "warm.jsonl"))
}

func TestCurveIsMonotone(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"curve", filepath.Join("testdata", "cold.jsonl")}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 5 { // header + 4 generations
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out.String())
	}
	prev := -1.0
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		best, err := strconv.ParseFloat(cols[2], 64)
		if err != nil {
			t.Fatalf("parse best_hypervolume %q: %v", cols[2], err)
		}
		if best < prev {
			t.Errorf("best_hypervolume not monotone: %v after %v", best, prev)
		}
		prev = best
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{},
		{"nonesuch"},
		{"summary"},
		{"summary", "testdata/does-not-exist.jsonl"},
		{"compare", "testdata/cold.jsonl"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
