// Command rrtrace analyzes the JSONL run traces the optimizer writes under
// -trace (cmd/optrr, cmd/experiments, cmd/rrmine): where did the wall time
// go, how did the front converge, and which of two runs got there faster.
//
// Usage:
//
//	rrtrace summary trace.jsonl           per-phase timing breakdown + outcome
//	rrtrace curve trace.jsonl             convergence curve as CSV on stdout
//	rrtrace compare a.jsonl b.jsonl       A/B: generations to reach fractions
//	                                      of the common hypervolume target
//
// summary totals the select/vary/eval/omega phase timings (which partition
// each generation) and the fitness/truncate kernel sub-phases (which overlap
// them) across all optimizer.generation events. curve emits one CSV row per
// generation from the optimizer.convergence events — best_hypervolume is the
// monotone envelope the paper's convergence figures plot; traces recorded
// without convergence events fall back to the generation events' hypervolume
// field. compare measures both runs against min(bestA, bestB), so each run
// is judged on a target both actually reached — the cold-vs-warm-start
// measurement of ROADMAP's adaptive-campaigns item.
package main

import (
	"fmt"
	"io"
	"os"
	"strconv"

	"optrr/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: rrtrace summary|curve|compare <trace.jsonl> [b.jsonl]")
	}
	switch cmd := args[0]; cmd {
	case "summary":
		if len(args) != 2 {
			return fmt.Errorf("usage: rrtrace summary <trace.jsonl>")
		}
		events, err := readTrace(args[1])
		if err != nil {
			return err
		}
		return writeSummary(w, trace.Summarize(events))
	case "curve":
		if len(args) != 2 {
			return fmt.Errorf("usage: rrtrace curve <trace.jsonl>")
		}
		events, err := readTrace(args[1])
		if err != nil {
			return err
		}
		return writeCurveCSV(w, trace.ConvergenceCurve(events))
	case "compare":
		if len(args) != 3 {
			return fmt.Errorf("usage: rrtrace compare <a.jsonl> <b.jsonl>")
		}
		eventsA, err := readTrace(args[1])
		if err != nil {
			return err
		}
		eventsB, err := readTrace(args[2])
		if err != nil {
			return err
		}
		curveA, curveB := trace.ConvergenceCurve(eventsA), trace.ConvergenceCurve(eventsB)
		if len(curveA) == 0 || len(curveB) == 0 {
			return fmt.Errorf("no convergence data (need optimizer.convergence or optimizer.generation events in both traces)")
		}
		return writeCompare(w, args[1], args[2], trace.Compare(curveA, curveB, nil))
	default:
		return fmt.Errorf("unknown subcommand %q (want summary, curve or compare)", cmd)
	}
}

func readTrace(path string) ([]trace.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	events, err := trace.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("%s: empty trace", path)
	}
	return events, nil
}

// writeSummary renders the per-phase breakdown. Phase percentages are of the
// select+vary+eval+omega timeline; the overlapping fitness/truncate
// sub-phases are shown without one.
func writeSummary(w io.Writer, s trace.Summary) error {
	fmt.Fprintf(w, "run: %d categories, %d records, delta %g, engine %s, seed %d\n",
		s.Categories, s.Records, s.Delta, s.Engine, s.Seed)
	if s.Islands > 1 {
		fmt.Fprintf(w, "islands: %d sub-populations, migration every %d generations (%d migrations, %d island generations)\n",
			s.Islands, s.MigrateEvery, s.Migrations, s.IslandGenerations)
	}
	fmt.Fprintf(w, "generations: %d run of %d budgeted, %d evaluations\n",
		s.GenerationsRun, s.Generations, s.Evaluations)

	var timeline float64
	for _, p := range s.Phases {
		if isTimelinePhase(p.Name) {
			timeline += p.TotalMS
		}
	}
	fmt.Fprintf(w, "\n%-10s %14s %8s\n", "phase", "total_ms", "share")
	for _, p := range s.Phases {
		if isTimelinePhase(p.Name) && timeline > 0 {
			fmt.Fprintf(w, "%-10s %14.3f %7.1f%%\n", p.Name, p.TotalMS, 100*p.TotalMS/timeline)
		} else {
			fmt.Fprintf(w, "%-10s %14.3f %8s\n", p.Name, p.TotalMS, "-")
		}
	}
	fmt.Fprintf(w, "%-10s %14.3f\n", "timeline", timeline)

	if s.BestHypervolume != 0 || s.SinceImprovement != 0 {
		fmt.Fprintf(w, "\nconvergence: best hypervolume %.9g, %d generations since improvement",
			s.BestHypervolume, s.SinceImprovement)
		if s.Stalled {
			fmt.Fprintf(w, " (stalled)")
		}
		fmt.Fprintln(w)
	}
	if s.Done {
		fmt.Fprintf(w, "done: front %d, wall %.1f ms", s.FrontSize, s.WallMS)
		if s.Stagnated {
			fmt.Fprintf(w, ", stagnated")
		}
		fmt.Fprintln(w)
	} else {
		fmt.Fprintln(w, "done: no optimizer.done event (trace cut short)")
	}
	return nil
}

// isTimelinePhase reports whether the phase is part of the generation
// timeline partition (as opposed to an overlapping kernel sub-phase).
func isTimelinePhase(name string) bool {
	switch name {
	case "select", "vary", "eval", "omega":
		return true
	}
	return false
}

// writeCurveCSV emits the convergence curve, one row per generation.
func writeCurveCSV(w io.Writer, pts []trace.ConvergencePoint) error {
	if len(pts) == 0 {
		return fmt.Errorf("no convergence data in trace")
	}
	fmt.Fprintln(w, "gen,hypervolume,best_hypervolume,improved,since_improvement,stalled,omega_inserts,omega_evictions,spread")
	for _, p := range pts {
		fmt.Fprintf(w, "%d,%s,%s,%t,%d,%t,%d,%d,%s\n",
			p.Gen, csvFloat(p.Hypervolume), csvFloat(p.BestHypervolume),
			p.Improved, p.SinceImprovement, p.Stalled,
			p.OmegaInserts, p.OmegaEvictions, csvFloat(p.Spread))
	}
	return nil
}

func csvFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writeCompare renders the A/B table.
func writeCompare(w io.Writer, nameA, nameB string, c trace.Comparison) error {
	fmt.Fprintf(w, "A: %s (best hypervolume %.9g over %d generations)\n", nameA, c.BestA, c.FinalGenA+1)
	fmt.Fprintf(w, "B: %s (best hypervolume %.9g over %d generations)\n", nameB, c.BestB, c.FinalGenB+1)
	fmt.Fprintf(w, "common target: %.9g\n\n", c.Target)
	fmt.Fprintf(w, "%-14s %10s %10s\n", "target_frac", "gens_A", "gens_B")
	for i, f := range c.Fractions {
		fmt.Fprintf(w, "%-14s %10s %10s\n",
			fmt.Sprintf("%.0f%%", 100*f), gens(c.GensA[i]), gens(c.GensB[i]))
	}
	return nil
}

// gens renders a generations-to-target count; -1 means never reached.
func gens(g int) string {
	if g < 0 {
		return "never"
	}
	return strconv.Itoa(g)
}
