// Command benchdiff compares two benchmark JSON files produced by ci.sh's
// bench-smoke stage and reports per-benchmark deltas. It is the repository's
// benchmark-regression guard: ci.sh runs it warn-only (the smoke runs are
// single-shot and noisy), but it exits non-zero on a regression beyond the
// thresholds so a cron or release pipeline can choose to gate on it.
//
// Usage:
//
//	go run ./cmd/benchdiff OLD.json NEW.json
//
// Thresholds (relative to OLD): ns/op may grow by 25% (wall time wobbles on
// shared runners), allocs/op by 5% (allocation counts are deterministic, so
// any growth is a real code change), B/op by 10%.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type entry map[string]any

// thresholds maps a metric unit to the maximum tolerated relative increase.
// Metrics not listed (front-size, custom b.ReportMetric values) are shown
// but never warned on: they are quality numbers, not costs.
var thresholds = map[string]float64{
	"ns/op":     0.25,
	"allocs/op": 0.05,
	"B/op":      0.10,
}

func load(path string) (map[string]entry, []string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var list []entry
	if err := json.Unmarshal(raw, &list); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]entry, len(list))
	var order []string
	for _, e := range list {
		name, _ := e["name"].(string)
		if name == "" {
			continue
		}
		out[name] = e
		order = append(order, name)
	}
	return out, order, nil
}

func num(e entry, key string) (float64, bool) {
	v, ok := e[key].(float64)
	return v, ok
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldSet, _, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	newSet, newOrder, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	regressions := 0
	for _, name := range newOrder {
		ne := newSet[name]
		oe, ok := oldSet[name]
		if !ok {
			fmt.Printf("NEW   %s (no baseline)\n", name)
			continue
		}
		// Stable key order: thresholded metrics first, then the rest.
		keys := make([]string, 0, len(ne))
		for k := range ne {
			if k == "name" || k == "iterations" {
				continue
			}
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			_, ti := thresholds[keys[i]]
			_, tj := thresholds[keys[j]]
			if ti != tj {
				return ti
			}
			return keys[i] < keys[j]
		})
		for _, k := range keys {
			nv, ok1 := num(ne, k)
			ov, ok2 := num(oe, k)
			if !ok1 || !ok2 {
				continue
			}
			var rel float64
			if ov != 0 {
				rel = (nv - ov) / ov
			}
			limit, gated := thresholds[k]
			switch {
			case gated && rel > limit:
				regressions++
				fmt.Printf("WARN  %s %s: %.4g -> %.4g (%+.1f%%, limit %+.0f%%)\n",
					name, k, ov, nv, rel*100, limit*100)
			case gated:
				fmt.Printf("ok    %s %s: %.4g -> %.4g (%+.1f%%)\n", name, k, ov, nv, rel*100)
			}
		}
	}
	for name := range oldSet {
		if _, ok := newSet[name]; !ok {
			fmt.Printf("GONE  %s (in baseline, not in new run)\n", name)
		}
	}
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond threshold\n", regressions)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regressions beyond thresholds")
}
