// Command optrr searches for optimal randomized-response matrices for a
// given categorical prior and privacy bound, printing the Pareto front and,
// optionally, the matrix meeting a requested privacy level.
//
// The prior comes from one of three sources:
//
//	-prior 0.4,0.3,0.2,0.1      explicit probabilities
//	-dist normal|gamma|uniform|zipf|bimodal|adult  a named synthetic prior
//	-data file                  one category index per line; the empirical
//	                            distribution is used
//
// Examples:
//
//	optrr -dist normal -categories 10 -delta 0.8
//	optrr -prior 0.5,0.3,0.2 -delta 0.7 -pick-privacy 0.45 -show-matrix
//	optrr -data records.txt -categories 10 -delta 0.8 -csv front.csv
//	optrr -dist normal -categories 6 -delta 0.8 -objectives ldp,mi
//
// -objectives adds extra optimization axes from the objective registry
// (ldp-epsilon, mutual-information, worst-mse; aliases ldp and mi resolve):
// the search returns a k-dimensional front and both the listing and -csv
// gain one column per extra objective.
//
// Observability: -trace file writes a JSONL run trace (per-generation
// timing, front and convergence events — analyze it with cmd/rrtrace:
// phase breakdowns, convergence-curve CSVs, A/B run comparison);
// -metrics-addr host:port serves live expvar, pprof and the metric registry
// while the search (and any -collect campaign) runs — /metrics speaks JSON
// by default and the Prometheus text format under content negotiation;
// -collect N simulates a collection campaign of N disguised reports through
// the picked matrix with an instrumented concurrency-safe collector.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"optrr"
	"optrr/internal/core"
	"optrr/internal/dataset"
	"optrr/internal/obs"
)

func main() {
	var (
		priorFlag   = flag.String("prior", "", "comma-separated category probabilities")
		distFlag    = flag.String("dist", "", "named prior: normal, gamma, uniform, zipf, bimodal, adult")
		dataFlag    = flag.String("data", "", "file with one category index per line")
		categories  = flag.Int("categories", 10, "number of categories for -dist/-data priors")
		records     = flag.Int("records", 10000, "data-set size N for the utility metric")
		delta       = flag.Float64("delta", 0.8, "worst-case posterior bound (Equation 9)")
		generations = flag.Int("generations", 3000, "EMO generation budget (the paper used 20000)")
		seed        = flag.Uint64("seed", 1, "random seed")
		workers     = flag.Int("workers", 0, "evaluation worker goroutines (0 = GOMAXPROCS); results are identical at every count")
		islands     = flag.Int("islands", 0, "island-model sub-populations (0 or 1 = single-population search)")
		migrate     = flag.Int("migrate-every", 0, "migration interval in generations for -islands (0 = default 25)")
		objectives  = flag.String("objectives", "", "comma-separated extra objectives beyond privacy/utility (e.g. ldp,mi; see registry names)")
		pickPrivacy = flag.Float64("pick-privacy", -1, "print the best matrix with at least this privacy")
		showMatrix  = flag.Bool("show-matrix", false, "print the picked matrix")
		savePath    = flag.String("save", "", "write the picked matrix as JSON to this path")
		csvPath     = flag.String("csv", "", "write the front as CSV to this path")
		quiet       = flag.Bool("quiet", false, "suppress the front listing")
		tracePath   = flag.String("trace", "", "write a JSONL run trace to this path")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar, pprof and /metrics on host:port while running")
		collectN    = flag.Int("collect", 0, "simulate a collection campaign of this many reports through the picked matrix")
		timeout     = flag.Duration("timeout", 0, "stop the search after this long and report the best-so-far front (0 = no limit); Ctrl-C does the same")
	)
	flag.Parse()

	if err := validateFlags(*records, *delta, *generations, *collectN, *workers, *islands, *migrate); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prior, err := resolvePrior(*priorFlag, *distFlag, *dataFlag, *categories)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	telem, err := obs.OpenCLI(*tracePath, *metricsAddr, "optrr")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telem.Close()
	if telem.MetricsURL != "" {
		fmt.Printf("metrics: %s/metrics  %s/debug/vars  %s/debug/pprof/\n",
			telem.MetricsURL, telem.MetricsURL, telem.MetricsURL)
	}

	cfg := core.DefaultConfig(prior, *records, *delta)
	cfg.Generations = *generations
	cfg.Workers = *workers
	cfg.Islands = *islands
	cfg.MigrateEvery = *migrate
	prob := optrr.Problem{
		Prior:    prior,
		Records:  *records,
		Delta:    *delta,
		Seed:     *seed,
		Advanced: &cfg,
	}
	if *objectives != "" {
		for _, name := range strings.Split(*objectives, ",") {
			prob.ExtraObjectives = append(prob.ExtraObjectives, strings.TrimSpace(name))
		}
	}
	if *tracePath != "" {
		prob.Recorder = telem.Recorder
	}
	if *metricsAddr != "" {
		prob.Metrics = telem.Registry
	}
	// Ctrl-C (and -timeout) stop the search at the next generation boundary;
	// the best-so-far front is still reported, so a long run interrupted
	// late loses nothing but the remaining budget.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	start := time.Now()
	res, err := optrr.OptimizeContext(ctx, prob)
	if err != nil {
		if res == nil || len(res.Front) == 0 ||
			!(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "search interrupted (%v); reporting the best-so-far front\n", err)
	}
	fmt.Printf("prior: %s\n", formatVec(prior))
	fmt.Printf("front: %d optimal matrices in %v (%d evaluations)\n",
		len(res.Front), time.Since(start).Round(time.Millisecond), res.Evaluations)

	// Extra objective axes of the run, in point order, with their values in
	// natural orientation; both empty for the default two-objective search,
	// keeping the legacy output byte-identical.
	extraNames := res.Objectives()[2:]
	extraCols := make([][]float64, len(extraNames))
	for t, name := range extraNames {
		extraCols[t], _ = res.ObjectiveValues(name)
	}

	if !*quiet {
		header := "privacy    utility(MSE)"
		for _, name := range extraNames {
			header += "  " + name
		}
		fmt.Println(header)
		for i, p := range res.Front {
			fmt.Printf("%.4f     %.6e", p.Privacy, p.Utility)
			for t := range extraCols {
				fmt.Printf("  %.6g", extraCols[t][i])
			}
			fmt.Println()
		}
	}

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		w := bufio.NewWriter(f)
		fmt.Fprintln(w, strings.Join(append([]string{"privacy", "utility"}, extraNames...), ","))
		for i, p := range res.Front {
			fmt.Fprintf(w, "%g,%g", p.Privacy, p.Utility)
			for t := range extraCols {
				fmt.Fprintf(w, ",%g", extraCols[t][i])
			}
			fmt.Fprintln(w)
		}
		if err := w.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("front written to %s\n", *csvPath)
	}

	var picked *optrr.Matrix
	if *pickPrivacy >= 0 {
		m, ok := res.MatrixWithPrivacyAtLeast(*pickPrivacy)
		if !ok {
			fmt.Fprintf(os.Stderr, "no matrix reaches privacy %.3f (front max %.3f)\n",
				*pickPrivacy, res.Front[len(res.Front)-1].Privacy)
			os.Exit(1)
		}
		ev, err := optrr.Evaluate(m, prior, *records)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("picked: privacy %.4f, utility %.6e, max posterior %.4f, LDP epsilon %.3f\n",
			ev.Privacy, ev.Utility, ev.MaxPosterior, optrr.LocalDPEpsilon(m))
		if *showMatrix {
			fmt.Println(m)
		}
		if *savePath != "" {
			data, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := os.WriteFile(*savePath, append(data, '\n'), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("matrix written to %s\n", *savePath)
		}
		picked = m
	}

	if *collectN > 0 {
		m := picked
		if m == nil {
			// No -pick-privacy: take the middle of the front.
			m = res.Matrices()[len(res.Front)/2]
		}
		if err := simulateCollection(m, prior, *collectN, *seed, telem); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// simulateCollection plays a collection campaign: *collectN respondents draw
// their true value from the prior, disguise it with m, and report to an
// instrumented concurrency-safe collector that snapshots its running
// reconstruction after every batch. With -metrics-addr this is the
// long-running scenario worth watching over expvar/pprof.
func simulateCollection(m *optrr.Matrix, prior []float64, n int, seed uint64, telem *obs.CLI) error {
	c := optrr.NewSafeCollector(m)
	c.Instrument(telem.Recorder, telem.Registry)
	rng := optrr.NewRand(seed + 1)

	cum := make([]float64, len(prior))
	var acc float64
	for i, p := range prior {
		acc += p
		cum[i] = acc
	}
	draw := func() int {
		u := rng.Float64() * acc
		for i, edge := range cum {
			if u < edge {
				return i
			}
		}
		return len(cum) - 1
	}

	const batch = 1000
	start := time.Now()
	buf := make([]int, 0, batch)
	for i := 0; i < n; i++ {
		buf = append(buf, draw())
		if len(buf) == batch || i == n-1 {
			disguised, err := m.Disguise(buf, rng)
			if err != nil {
				return err
			}
			if err := c.IngestBatch(disguised); err != nil {
				return err
			}
			if _, err := c.Snapshot(1.96); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	sum, err := c.Snapshot(1.96)
	if err != nil {
		return err
	}
	margin, err := c.MarginOfError(1.96)
	if err != nil {
		return err
	}
	fmt.Printf("\ncollection: %d reports in %v; reconstruction (±95%% half-width):\n",
		sum.Reports, time.Since(start).Round(time.Millisecond))
	for k, est := range sum.Estimate {
		fmt.Printf("  c%-3d %.4f ±%.4f (true %.4f)\n", k, est, sum.HalfWidth[k], prior[k])
	}
	fmt.Printf("worst-case margin of error: ±%.4f\n", margin)
	return nil
}

// validateFlags fails fast on flag values that would otherwise surface as a
// confusing optimizer or collector error minutes into a run.
func validateFlags(records int, delta float64, generations, collectN, workers, islands, migrate int) error {
	if records <= 0 {
		return fmt.Errorf("-records must be positive, got %d", records)
	}
	if delta <= 0 || delta > 1 {
		return fmt.Errorf("-delta must be in (0, 1], got %v", delta)
	}
	if generations <= 0 {
		return fmt.Errorf("-generations must be positive, got %d", generations)
	}
	if collectN < 0 {
		return fmt.Errorf("-collect must be non-negative, got %d", collectN)
	}
	if workers < 0 {
		return fmt.Errorf("-workers must be non-negative, got %d", workers)
	}
	if islands < 0 {
		return fmt.Errorf("-islands must be non-negative, got %d", islands)
	}
	if migrate < 0 {
		return fmt.Errorf("-migrate-every must be non-negative, got %d", migrate)
	}
	return nil
}

func resolvePrior(priorFlag, distFlag, dataFlag string, n int) ([]float64, error) {
	set := 0
	for _, s := range []string{priorFlag, distFlag, dataFlag} {
		if s != "" {
			set++
		}
	}
	if set != 1 {
		return nil, fmt.Errorf("exactly one of -prior, -dist, -data is required")
	}
	switch {
	case priorFlag != "":
		parts := strings.Split(priorFlag, ",")
		prior := make([]float64, len(parts))
		for i, p := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				return nil, fmt.Errorf("-prior entry %d: %v", i, err)
			}
			prior[i] = v
		}
		if err := dataset.ValidateDistribution(prior); err != nil {
			return nil, err
		}
		return prior, nil
	case distFlag != "":
		var g dataset.Generator
		switch distFlag {
		case "normal":
			g = dataset.DefaultNormal(n)
		case "gamma":
			g = dataset.GammaGenerator(1, 2)
		case "uniform":
			g = dataset.UniformGenerator()
		case "zipf":
			g = dataset.ZipfGenerator(1)
		case "bimodal":
			g = dataset.BimodalGenerator()
		case "adult":
			g = dataset.DefaultAdult().Generator()
		default:
			return nil, fmt.Errorf("unknown -dist %q", distFlag)
		}
		return g.Prior(n), nil
	default:
		f, err := os.Open(dataFlag)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var recs []int
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			text := strings.TrimSpace(sc.Text())
			if text == "" || strings.HasPrefix(text, "#") {
				continue
			}
			v, err := strconv.Atoi(text)
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", dataFlag, line, err)
			}
			recs = append(recs, v)
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		d, err := dataset.NewCategorical(n, recs)
		if err != nil {
			return nil, err
		}
		return d.Distribution(), nil
	}
}

func formatVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = strconv.FormatFloat(x, 'f', 4, 64)
	}
	return "[" + strings.Join(parts, " ") + "]"
}
