package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestResolvePriorExplicit(t *testing.T) {
	p, err := resolvePrior("0.4, 0.3 ,0.2,0.1", "", "", 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.4, 0.3, 0.2, 0.1}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("prior = %v", p)
		}
	}
}

func TestResolvePriorRejectsBadExplicit(t *testing.T) {
	if _, err := resolvePrior("0.5,0.6", "", "", 2); err == nil {
		t.Fatal("non-normalized prior accepted")
	}
	if _, err := resolvePrior("0.5,abc", "", "", 2); err == nil {
		t.Fatal("non-numeric prior accepted")
	}
}

func TestResolvePriorExactlyOneSource(t *testing.T) {
	if _, err := resolvePrior("", "", "", 4); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := resolvePrior("0.5,0.5", "normal", "", 2); err == nil {
		t.Fatal("two sources accepted")
	}
}

func TestResolvePriorNamedDistributions(t *testing.T) {
	for _, name := range []string{"normal", "gamma", "uniform", "zipf", "bimodal"} {
		p, err := resolvePrior("", name, "", 10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var sum float64
		for _, v := range p {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s prior sums to %v", name, sum)
		}
	}
	if _, err := resolvePrior("", "nonesuch", "", 10); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}

func TestResolvePriorFromDataFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	content := "# comment\n0\n1\n1\n\n2\n2\n2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := resolvePrior("", "", path, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for i := range want {
		if math.Abs(p[i]-want[i]) > 1e-12 {
			t.Fatalf("prior = %v, want %v", p, want)
		}
	}
}

func TestResolvePriorDataFileErrors(t *testing.T) {
	if _, err := resolvePrior("", "", "/nonexistent/file", 3); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0\nseven\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolvePrior("", "", bad, 3); err == nil {
		t.Fatal("non-numeric record accepted")
	}
	outOfRange := filepath.Join(dir, "range.txt")
	if err := os.WriteFile(outOfRange, []byte("0\n9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := resolvePrior("", "", outOfRange, 3); err == nil {
		t.Fatal("out-of-range record accepted")
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(10000, 0.8, 3000, 0, 0, 0, 0); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if err := validateFlags(10000, 0.8, 3000, 100, 4, 8, 25); err != nil {
		t.Fatalf("island flags rejected: %v", err)
	}
	for _, tc := range []struct {
		name        string
		records     int
		delta       float64
		generations int
		collectN    int
		workers     int
		islands     int
		migrate     int
	}{
		{name: "zero records", records: 0, delta: 0.8, generations: 3000},
		{name: "negative records", records: -5, delta: 0.8, generations: 3000},
		{name: "zero delta", records: 10000, delta: 0, generations: 3000},
		{name: "delta above one", records: 10000, delta: 1.5, generations: 3000},
		{name: "zero generations", records: 10000, delta: 0.8, generations: 0},
		{name: "negative collect", records: 10000, delta: 0.8, generations: 3000, collectN: -1},
		{name: "negative workers", records: 10000, delta: 0.8, generations: 3000, workers: -1},
		{name: "negative islands", records: 10000, delta: 0.8, generations: 3000, islands: -2},
		{name: "negative migrate", records: 10000, delta: 0.8, generations: 3000, migrate: -1},
	} {
		if err := validateFlags(tc.records, tc.delta, tc.generations, tc.collectN, tc.workers, tc.islands, tc.migrate); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestFormatVec(t *testing.T) {
	got := formatVec([]float64{0.5, 0.25})
	if got != "[0.5000 0.2500]" {
		t.Fatalf("formatVec = %q", got)
	}
}
