// Command rrserver is the LDP collection service: the server half of the
// paper's Section I deployment. Respondents disguise locally (see the
// rrclient SDK) and POST only disguised category indices; rrserver
// aggregates them in a sharded collector and serves the debiased frequency
// estimate with per-category confidence half-widths.
//
//	rrserver -addr :8433 -categories 10 -warner 0.75 -snapshot state.json
//
// Large domains deploy the count-mean-sketch scheme instead of a dense
// matrix: -sketch-domain switches modes, hashing each value into a small
// k×m report grid so server memory and the wire format stay O(k·m) no
// matter how many categories exist:
//
//	rrserver -sketch-domain 1000000 -hash-functions 16 -hash-range 256 -epsilon 4
//
// Endpoints: POST /v1/report and /v1/reports (single/batch ingest),
// GET /v1/estimate (?z=, ?margin= dense; ?categories= sketch),
// GET /v1/scheme (ETagged with the scheme version), GET /v1/heavyhitters
// (?threshold=, ?limit=), plus the obs debug surface on the same listener:
// /metrics (JSON or Prometheus), /healthz, /debug/vars, /debug/pprof/.
//
// The collection state is persisted to -snapshot every -snapshot-every and
// restored at boot; a corrupt or scheme-mismatched snapshot is rejected with
// a logged warning and collection starts fresh. SIGINT/SIGTERM drain
// gracefully: the listener closes, in-flight ingests finish (5s grace), and
// a final snapshot is written so a rolling restart loses zero reports.
//
// -loadtest N switches to the load driver: an in-process server is stood up
// on a loopback port and N reports are pushed through the full HTTP batch
// path, printing throughput and p50/p90/p99 ingest latency. Inspect traces
// with cmd/rrtrace.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"optrr/internal/obs"
	"optrr/internal/rr"
	"optrr/internal/rrserver"
	"optrr/internal/sketch"
)

func main() {
	var (
		addr          = flag.String("addr", "127.0.0.1:8433", "listen address (host:port)")
		categories    = flag.Int("categories", 10, "category domain size for the default Warner scheme")
		warnerP       = flag.Float64("warner", 0.75, "Warner diagonal p for the default scheme")
		matrixPath    = flag.String("matrix", "", "JSON disguise-matrix file (e.g. from cmd/optrr); overrides -categories/-warner")
		sketchDomain  = flag.Int("sketch-domain", 0, "deploy a count-mean-sketch scheme over this many categories (0 = dense mode)")
		hashFuncs     = flag.Int("hash-functions", 16, "sketch hash functions k (with -sketch-domain)")
		hashRange     = flag.Int("hash-range", 256, "sketch hash range m: values hash into m cells before disguising (with -sketch-domain)")
		epsilon       = flag.Float64("epsilon", 4, "sketch inner k-RR privacy budget ε (with -sketch-domain)")
		hashSeed      = flag.Uint64("hash-seed", 1, "sketch hash-family seed; clients and server must agree (with -sketch-domain)")
		shards        = flag.Int("shards", 0, "collector shards (0 = GOMAXPROCS)")
		z             = flag.Float64("z", rrserver.DefaultZ, "confidence quantile for /v1/estimate")
		snapshotPath  = flag.String("snapshot", "", "persist collection state to this file and restore it at boot")
		snapshotEvery = flag.Duration("snapshot-every", 30*time.Second, "snapshot persistence period")
		maxBatch      = flag.Int("max-batch", rrserver.DefaultMaxBatch, "largest accepted /v1/reports batch")
		tracePath     = flag.String("trace", "", "write a JSONL run trace to this path")
		loadtest      = flag.Int("loadtest", 0, "run the load driver with this many reports instead of serving")
		loadBatch     = flag.Int("loadtest-batch", 1000, "reports per batch in -loadtest")
		loadWorkers   = flag.Int("loadtest-workers", 4, "concurrent reporting clients in -loadtest")
		seed          = flag.Uint64("seed", 1, "load-driver seed (values and disguise draws)")
	)
	flag.Parse()

	f := flags{
		addr: *addr, categories: *categories, warnerP: *warnerP,
		matrixPath: *matrixPath, sketchDomain: *sketchDomain,
		hashFuncs: *hashFuncs, hashRange: *hashRange,
		epsilon: *epsilon, hashSeed: *hashSeed,
		shards: *shards, z: *z,
		snapshotPath: *snapshotPath, snapshotEvery: *snapshotEvery,
		maxBatch: *maxBatch, tracePath: *tracePath,
		loadtest: *loadtest, loadBatch: *loadBatch, loadWorkers: *loadWorkers,
		seed: *seed,
	}
	if err := validateFlags(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := run(f); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type flags struct {
	addr          string
	categories    int
	warnerP       float64
	matrixPath    string
	sketchDomain  int
	hashFuncs     int
	hashRange     int
	epsilon       float64
	hashSeed      uint64
	shards        int
	z             float64
	snapshotPath  string
	snapshotEvery time.Duration
	maxBatch      int
	tracePath     string
	loadtest      int
	loadBatch     int
	loadWorkers   int
	seed          uint64
}

func run(f flags) error {
	if err := validateFlags(f); err != nil {
		return err
	}
	scheme, err := loadScheme(f)
	if err != nil {
		return err
	}

	telem, err := obs.OpenCLI(f.tracePath, "", "rrserver")
	if err != nil {
		return err
	}
	defer telem.Close()
	telem.Registry.PublishExpvar("rrserver")

	srv, err := rrserver.New(rrserver.Config{
		Scheme:        scheme,
		Shards:        f.shards,
		Z:             f.z,
		SnapshotPath:  f.snapshotPath,
		SnapshotEvery: f.snapshotEvery,
		MaxBatch:      f.maxBatch,
		Recorder:      telem.Recorder,
		Registry:      telem.Registry,
		Logf:          log.Printf,
	})
	if err != nil {
		return err
	}

	if f.loadtest > 0 {
		return runLoadtest(srv, f)
	}

	httpSrv, err := obs.ServeMux(f.addr, telem.Registry, srv.Register)
	if err != nil {
		return err
	}
	log.Printf("rrserver: serving %d categories (%s scheme %s) on http://%s (restored=%v, reports=%d)",
		srv.Categories(), scheme.Kind(), srv.SchemeVersion(), httpSrv.Addr(), srv.Restored(), srv.Count())

	// Graceful drain: the signal closes the listener and waits for in-flight
	// ingests (5s grace) BEFORE the snapshot loop is cancelled, so the final
	// snapshot includes every drained report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	snapCtx, snapCancel := context.WithCancel(context.Background())
	runDone := make(chan error, 1)
	go func() { runDone <- srv.Run(snapCtx) }()

	<-ctx.Done()
	stop()
	log.Printf("rrserver: shutting down, draining in-flight requests")
	if err := httpSrv.Close(); err != nil {
		log.Printf("rrserver: http shutdown: %v", err)
	}
	snapCancel()
	if err := <-runDone; err != nil {
		return fmt.Errorf("final snapshot: %w", err)
	}
	log.Printf("rrserver: stopped with %d reports persisted", srv.Count())
	return nil
}

// validateFlags fails fast on values the server or collector would only
// reject mid-flight.
func validateFlags(f flags) error {
	if f.sketchDomain > 0 {
		if f.matrixPath != "" {
			return fmt.Errorf("-sketch-domain and -matrix are mutually exclusive")
		}
		if f.hashFuncs < 1 {
			return fmt.Errorf("-hash-functions must be at least 1, got %d", f.hashFuncs)
		}
		if f.hashRange < 2 {
			return fmt.Errorf("-hash-range must be at least 2, got %d", f.hashRange)
		}
		if !(f.epsilon > 0) {
			return fmt.Errorf("-epsilon must be positive, got %v", f.epsilon)
		}
	} else if f.matrixPath == "" {
		if f.categories < 2 {
			return fmt.Errorf("-categories must be at least 2, got %d", f.categories)
		}
		if f.warnerP < 0 || f.warnerP > 1 {
			return fmt.Errorf("-warner must be in [0, 1], got %v", f.warnerP)
		}
	}
	if !(f.z > 0) {
		return fmt.Errorf("-z must be positive, got %v", f.z)
	}
	if f.maxBatch <= 0 {
		return fmt.Errorf("-max-batch must be positive, got %d", f.maxBatch)
	}
	if f.loadtest > 0 {
		if f.loadBatch <= 0 {
			return fmt.Errorf("-loadtest-batch must be positive, got %d", f.loadBatch)
		}
		if f.loadWorkers <= 0 {
			return fmt.Errorf("-loadtest-workers must be positive, got %d", f.loadWorkers)
		}
	}
	return nil
}

// loadScheme builds the deployed scheme: a count-mean sketch when
// -sketch-domain is set, a JSON matrix file when given (validated on
// decode), else the Warner default.
func loadScheme(f flags) (rr.Scheme, error) {
	if f.sketchDomain > 0 {
		return sketch.NewKRR(f.sketchDomain, f.hashFuncs, f.hashRange, f.epsilon, f.hashSeed)
	}
	if f.matrixPath == "" {
		return rr.Warner(f.categories, f.warnerP)
	}
	data, err := os.ReadFile(f.matrixPath)
	if err != nil {
		return nil, err
	}
	m := new(rr.Matrix)
	if err := m.UnmarshalJSON(data); err != nil {
		return nil, fmt.Errorf("%s: %w", f.matrixPath, err)
	}
	if !m.Invertible() {
		return nil, fmt.Errorf("%s: matrix is singular; estimates would be undefined", f.matrixPath)
	}
	return m, nil
}

// runLoadtest stands the service up on a loopback port and pushes
// f.loadtest reports through the real HTTP batch-ingest path, reporting
// throughput and ingest-latency quantiles (the numbers the pinned bench
// harness tracks via BenchmarkServerIngest).
func runLoadtest(srv *rrserver.Server, f flags) error {
	httpSrv, err := obs.ServeMux("127.0.0.1:0", nil, srv.Register)
	if err != nil {
		return err
	}
	defer httpSrv.Close()

	res, err := rrserver.LoadTest(context.Background(), rrserver.LoadConfig{
		BaseURL:    "http://" + httpSrv.Addr(),
		Categories: srv.Categories(),
		Reports:    f.loadtest,
		Batch:      f.loadBatch,
		Workers:    f.loadWorkers,
		Seed:       f.seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("reports\t%d\nbatches\t%d\nseconds\t%.3f\nreports/sec\t%.0f\np50_ms\t%.3f\np90_ms\t%.3f\np99_ms\t%.3f\n",
		res.Reports, res.Batches, res.Seconds, res.Throughput,
		res.P50ms, res.P90ms, res.P99ms)
	if err := srv.SnapshotNow(); err != nil {
		return err
	}
	// The margin line is a dense-mode diagnostic; the sketch has no single
	// full-domain margin to quote.
	if col := srv.Collector(); col != nil {
		est, err := col.Snapshot(srv.Z())
		if err != nil {
			return err
		}
		worst := 0.0
		for _, h := range est.HalfWidth {
			if h > worst {
				worst = h
			}
		}
		fmt.Printf("margin\t%.6f\n", worst)
	}
	return nil
}
