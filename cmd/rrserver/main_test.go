package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"optrr/internal/rr"
)

func baseFlags() flags {
	return flags{
		addr: "127.0.0.1:0", categories: 4, warnerP: 0.75,
		z: 1.96, snapshotEvery: time.Second, maxBatch: 1 << 10,
		loadBatch: 100, loadWorkers: 2, seed: 1,
	}
}

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*flags)
		wantErr string
	}{
		{"defaults ok", func(*flags) {}, ""},
		{"one category", func(f *flags) { f.categories = 1 }, "-categories"},
		{"warner above 1", func(f *flags) { f.warnerP = 1.5 }, "-warner"},
		{"matrix file skips scheme flags", func(f *flags) { f.matrixPath = "m.json"; f.categories = 1 }, ""},
		{"zero z", func(f *flags) { f.z = 0 }, "-z"},
		{"negative max batch", func(f *flags) { f.maxBatch = -1 }, "-max-batch"},
		{"loadtest bad batch", func(f *flags) { f.loadtest = 10; f.loadBatch = 0 }, "-loadtest-batch"},
		{"loadtest bad workers", func(f *flags) { f.loadtest = 10; f.loadWorkers = 0 }, "-loadtest-workers"},
		{"sketch ok", func(f *flags) { f.sketchDomain = 1000; f.hashFuncs = 8; f.hashRange = 64; f.epsilon = 4 }, ""},
		{"sketch with matrix file", func(f *flags) {
			f.sketchDomain = 1000
			f.hashFuncs = 8
			f.hashRange = 64
			f.epsilon = 4
			f.matrixPath = "m.json"
		}, "mutually exclusive"},
		{"sketch bad hash functions", func(f *flags) { f.sketchDomain = 1000; f.hashRange = 64; f.epsilon = 4 }, "-hash-functions"},
		{"sketch bad hash range", func(f *flags) { f.sketchDomain = 1000; f.hashFuncs = 8; f.hashRange = 1; f.epsilon = 4 }, "-hash-range"},
		{"sketch bad epsilon", func(f *flags) { f.sketchDomain = 1000; f.hashFuncs = 8; f.hashRange = 64 }, "-epsilon"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := baseFlags()
			tc.mutate(&f)
			err := validateFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %v does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestLoadMatrix(t *testing.T) {
	f := baseFlags()
	m, err := loadScheme(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Domain() != 4 {
		t.Fatalf("Warner default has %d categories, want 4", m.Domain())
	}
	if m.Kind() != rr.DenseKind {
		t.Fatalf("default scheme kind %q, want dense", m.Kind())
	}

	want, err := rr.Warner(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	data, err := want.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	f.matrixPath = path
	got, err := loadScheme(f)
	if err != nil {
		t.Fatal(err)
	}
	if got.Domain() != 3 {
		t.Fatalf("loaded matrix has %d categories, want 3", got.Domain())
	}

	f.matrixPath = filepath.Join(t.TempDir(), "missing.json")
	if _, err := loadScheme(f); err == nil {
		t.Fatal("missing matrix file accepted")
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"categories": 2, "columns": [[0.5, 0.5], [0.7, 0.7]]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	f.matrixPath = bad
	if _, err := loadScheme(f); err == nil {
		t.Fatal("malformed matrix file accepted")
	}
}

func TestLoadSchemeSketch(t *testing.T) {
	f := baseFlags()
	f.sketchDomain, f.hashFuncs, f.hashRange, f.epsilon, f.hashSeed = 100000, 8, 64, 4, 7
	s, err := loadScheme(f)
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != "cms" {
		t.Fatalf("sketch scheme kind %q, want cms", s.Kind())
	}
	if s.Domain() != 100000 || s.ReportSpace() != 8*64 {
		t.Fatalf("Domain/ReportSpace = %d/%d", s.Domain(), s.ReportSpace())
	}
}
