package main

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(0.8, 0); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	if err := validateFlags(-0.1, 0); err == nil {
		t.Error("negative warner accepted")
	}
	if err := validateFlags(1.5, 0); err == nil {
		t.Error("warner above one accepted")
	}
	if err := validateFlags(0.8, -1); err == nil {
		t.Error("negative depth accepted")
	}
}

func TestLoadTableDemo(t *testing.T) {
	table, err := loadTable("", true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 40000 {
		t.Fatalf("demo rows = %d", table.Len())
	}
	attrs := table.Attributes()
	if len(attrs) != 4 || attrs[3].Name != "approved" {
		t.Fatalf("demo schema = %v", attrs)
	}
	// The demo joint is a proper distribution; marginals must sum to 1 and
	// match their construction.
	inc, err := table.Marginal(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inc[0]-0.4) > 0.01 || math.Abs(inc[2]-0.2) > 0.01 {
		t.Fatalf("income marginal = %v", inc)
	}
}

func TestLoadTableDemoDeterministic(t *testing.T) {
	a, err := loadTable("", true, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadTable("", true, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		for d := 0; d < 4; d++ {
			if a.Row(i)[d] != b.Row(i)[d] {
				t.Fatal("demo table not deterministic")
			}
		}
	}
}

func TestLoadTableFromCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	content := "color,size\nred,small\nblue,big\nred,big\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	table, err := loadTable(path, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if table.Len() != 3 || len(table.Attributes()) != 2 {
		t.Fatalf("table shape: %d rows, %d attrs", table.Len(), len(table.Attributes()))
	}
}

func TestLoadTableSourceValidation(t *testing.T) {
	if _, err := loadTable("", false, 1); err == nil {
		t.Fatal("no source accepted")
	}
	if _, err := loadTable("x.csv", true, 1); err == nil {
		t.Fatal("two sources accepted")
	}
	if _, err := loadTable("/nonexistent.csv", false, 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
