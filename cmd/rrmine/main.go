// Command rrmine demonstrates privacy-preserving data mining on a CSV
// table: the table is disguised column by column with Warner randomized
// response (playing the data owners), and all mining runs on the disguised
// rows only (playing the collector) — reconstructed marginals, a decision
// tree for a chosen class attribute, and a naive-Bayes classifier. Clean
// and reconstructed numbers are printed side by side so the utility loss is
// visible.
//
// Usage:
//
//	rrmine -data table.csv -class approved [-warner 0.8] [-seed 1]
//	       [-tree] [-bayes] [-depth 3]
//
// The CSV needs a header row; category domains are inferred from the data.
// With -demo, a built-in synthetic loan table is used instead of -data.
//
// With -sketch N, the table pipeline is skipped for the large-domain mining
// demo: Zipf-distributed values over an N-category domain are disguised
// through the count-mean-sketch scheme (never materializing an N×N matrix),
// aggregated in the O(k·m) sketch collector, and the heavy hitters recovered
// by the chunked top-k scan — estimated vs true frequencies side by side.
//
// Observability: -trace file writes one JSONL event per mining stage (load,
// disguise, marginals, tree, independence, bayes) with wall-time and key
// outcomes (inspect with cmd/rrtrace or jq); -metrics-addr host:port serves
// expvar, pprof and /metrics.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"optrr/internal/collector"
	"optrr/internal/dataset"
	"optrr/internal/mining"
	"optrr/internal/obs"
	"optrr/internal/randx"
	"optrr/internal/rr"
	"optrr/internal/sketch"
)

func main() {
	var (
		dataPath     = flag.String("data", "", "CSV file with a header row")
		demo         = flag.Bool("demo", false, "use a built-in synthetic loan table")
		class        = flag.String("class", "", "class attribute for tree/bayes (default: last column)")
		warnerP      = flag.Float64("warner", 0.8, "Warner diagonal p used to disguise every attribute")
		seed         = flag.Uint64("seed", 1, "random seed")
		tree         = flag.Bool("tree", true, "build a decision tree")
		bayes        = flag.Bool("bayes", true, "train naive Bayes")
		independence = flag.Bool("independence", false, "print a pairwise chi-square dependence table")
		depth        = flag.Int("depth", 0, "max tree depth (0 = number of attributes)")
		sketchDomain = flag.Int("sketch", 0, "run the large-domain heavy-hitter demo over this many categories instead of the table pipeline")
		sketchN      = flag.Int("sketch-records", 200000, "records to draw in the -sketch demo")
		epsilon      = flag.Float64("epsilon", 4, "sketch inner k-RR privacy budget ε (with -sketch)")
		tracePath    = flag.String("trace", "", "write a JSONL run trace to this path")
		metricsAddr  = flag.String("metrics-addr", "", "serve expvar, pprof and /metrics on host:port while running")
	)
	flag.Parse()

	if err := validateFlags(*warnerP, *depth); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	telem, err := obs.OpenCLI(*tracePath, *metricsAddr, "rrmine")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telem.Close()
	if telem.MetricsURL != "" {
		fmt.Printf("metrics: %s/metrics\n", telem.MetricsURL)
	}
	// stage records one "rrmine.<name>" event with wall-time and outcome
	// fields, and mirrors the duration into the metric registry.
	stage := func(name string, start time.Time, fields obs.Fields) {
		elapsed := time.Since(start)
		telem.Registry.Gauge("rrmine.stage." + name + "_ms").Set(float64(elapsed.Microseconds()) / 1e3)
		if !telem.Recorder.Enabled() {
			return
		}
		if fields == nil {
			fields = obs.Fields{}
		}
		fields["ms"] = float64(elapsed.Microseconds()) / 1e3
		telem.Recorder.Record("rrmine."+name, fields)
	}

	if *sketchDomain > 0 {
		if err := runSketchDemo(*sketchDomain, *sketchN, *epsilon, *seed, stage); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	stageStart := time.Now()
	table, err := loadTable(*dataPath, *demo, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	stage("load", stageStart, obs.Fields{"rows": table.Len(), "attributes": len(table.Attributes())})
	attrs := table.Attributes()
	classIdx := len(attrs) - 1
	if *class != "" {
		classIdx, err = table.AttributeIndex(*class)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	fmt.Printf("table: %d rows, %d attributes; class = %q\n",
		table.Len(), len(attrs), attrs[classIdx].Name)

	// Disguise (the data owners' side).
	stageStart = time.Now()
	rng := randx.New(*seed)
	ms := make([]*rr.Matrix, len(attrs))
	for d, a := range attrs {
		m, err := rr.Warner(len(a.Categories), *warnerP)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ms[d] = m
	}
	mr, err := mining.NewMultiRR(ms...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	disguised, err := mr.Disguise(table.Rows(), rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("disguised every attribute with Warner(p=%.2f); mining sees only disguised rows\n\n", *warnerP)
	stage("disguise", stageStart, obs.Fields{"rows": len(disguised), "warner": *warnerP})

	// Reconstructed marginals vs clean marginals.
	stageStart = time.Now()
	fmt.Println("reconstructed marginals (clean value in parentheses):")
	for d, a := range attrs {
		sub, err := mining.NewMultiRR(ms[d])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		col := make([][]int, len(disguised))
		for i, row := range disguised {
			col[i] = []int{row[d]}
		}
		est, err := sub.EstimateJoint(col)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		est = rr.Clip(est)
		clean, err := table.Marginal(d)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  %s:\n", a.Name)
		for v, label := range a.Categories {
			fmt.Printf("    %-12s %.4f (%.4f)\n", label, est[v], clean[v])
		}
	}
	stage("marginals", stageStart, obs.Fields{"attributes": len(attrs)})

	if *tree {
		stageStart = time.Now()
		fmt.Println("\ndecision tree (trained on the reconstructed joint):")
		joint, err := mr.EstimateJoint(disguised)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tr, err := mining.BuildTree(mr, joint, classIdx, mining.TreeConfig{MaxDepth: *depth})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		acc, err := tr.Accuracy(table.Rows())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("  accuracy on the CLEAN rows: %.1f%%\n", 100*acc)
		stage("tree", stageStart, obs.Fields{"accuracy": acc, "depth": *depth})
	}

	if *independence {
		stageStart = time.Now()
		fmt.Println("\npairwise dependence (chi-square on the reconstructed joints):")
		for a := 0; a < len(attrs); a++ {
			for b := a + 1; b < len(attrs); b++ {
				res, err := mining.ChiSquareIndependence(mr, disguised, a, b)
				if err != nil {
					fmt.Fprintln(os.Stderr, err)
					os.Exit(1)
				}
				verdict := "independent"
				if res.Dependent(0.01) {
					verdict = "DEPENDENT"
				}
				fmt.Printf("  %-10s vs %-10s  chi2=%8.1f  p=%.4f  V=%.3f  %s\n",
					attrs[a].Name, attrs[b].Name, res.Statistic, res.PValue, res.CramersV, verdict)
			}
		}
		stage("independence", stageStart, obs.Fields{"pairs": len(attrs) * (len(attrs) - 1) / 2})
	}

	if *bayes {
		stageStart = time.Now()
		nb, err := mining.TrainNaiveBayes(mr, disguised, classIdx, 1)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		acc, err := nb.Accuracy(table.Rows())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nnaive Bayes (trained on disguised rows): %.1f%% accuracy on clean rows\n", 100*acc)
		stage("bayes", stageStart, obs.Fields{"accuracy": acc})
	}
}

// validateFlags fails fast on flag values that would only be rejected after
// the table is loaded and disguising has begun.
func validateFlags(warnerP float64, depth int) error {
	if warnerP < 0 || warnerP > 1 {
		return fmt.Errorf("-warner must be in [0, 1], got %v", warnerP)
	}
	if depth < 0 {
		return fmt.Errorf("-depth must be non-negative, got %d", depth)
	}
	return nil
}

// runSketchDemo is the large-domain mining story end to end: Zipf values
// over a domain no dense matrix could cover, disguised record by record
// through the count-mean sketch, aggregated in the sketch collector, heavy
// hitters recovered by the chunked top-k scan.
func runSketchDemo(domain, records int, epsilon float64, seed uint64, stage func(string, time.Time, obs.Fields)) error {
	if records <= 0 {
		return fmt.Errorf("-sketch-records must be positive, got %d", records)
	}
	if !(epsilon > 0) {
		return fmt.Errorf("-epsilon must be positive, got %v", epsilon)
	}
	const hashes, hashRange = 16, 256
	scheme, err := sketch.NewKRR(domain, hashes, hashRange, epsilon, seed)
	if err != nil {
		return err
	}
	fmt.Printf("sketch demo: %d categories -> %d hash functions x %d cells (%.1f KiB of counters, ε=%.2g)\n",
		domain, hashes, hashRange, float64(scheme.ReportSpace()*8)/1024, epsilon)

	// Zipf(1) values: the data owners' side.
	stageStart := time.Now()
	cdf := make([]float64, domain)
	sum := 0.0
	for i := range cdf {
		sum += 1 / float64(i+1)
		cdf[i] = sum
	}
	rng := randx.New(seed)
	values := make([]int, records)
	truth := make(map[int]float64, 16)
	for i := range values {
		u := rng.Float64() * sum
		lo, hi := 0, domain
		for lo < hi {
			mid := (lo + hi) / 2
			if cdf[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		values[i] = lo
		if lo < 16 {
			truth[lo] += 1 / float64(records)
		}
	}
	reports := make([]int, records)
	if err := scheme.DisguiseBatchInto(reports, values, seed+1, 0); err != nil {
		return err
	}
	stage("sketch_disguise", stageStart, obs.Fields{"records": records, "domain": domain})

	// Aggregation and discovery: the collector's side, which never sees a
	// true value and never allocates anything domain-sized but the scan.
	stageStart = time.Now()
	col := collector.NewSketch(scheme, 0)
	if err := col.IngestBatch(reports); err != nil {
		return err
	}
	hits, err := mining.TopK(col, 10)
	if err != nil {
		return err
	}
	stage("sketch_mine", stageStart, obs.Fields{"hits": len(hits)})

	fmt.Println("top-10 heavy hitters (true frequency in parentheses):")
	for _, h := range hits {
		fmt.Printf("  category %-8d %.4f (%.4f)\n", h.Category, h.Estimate, truth[h.Category])
	}
	return nil
}

// loadTable reads the CSV or synthesizes the demo table.
func loadTable(path string, demo bool, seed uint64) (*dataset.Table, error) {
	if demo == (path != "") {
		return nil, fmt.Errorf("exactly one of -data or -demo is required")
	}
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return dataset.ReadCSV(f, nil)
	}
	// Demo: loan approval depends on income and debt; region is noise.
	attrs := []dataset.Attribute{
		{Name: "income", Categories: []string{"low", "mid", "high"}},
		{Name: "debt", Categories: []string{"none", "some", "heavy"}},
		{Name: "region", Categories: []string{"north", "south"}},
		{Name: "approved", Categories: []string{"no", "yes"}},
	}
	// Assemble the joint: P(income)·P(debt)·P(region)·P(approved | income, debt).
	incomeP := []float64{0.4, 0.4, 0.2}
	debtP := []float64{0.3, 0.5, 0.2}
	regionP := []float64{0.55, 0.45}
	approve := func(income, debt int) float64 {
		switch {
		case income == 2:
			return 0.9
		case income == 1 && debt == 0:
			return 0.8
		case income == 1 && debt == 1:
			return 0.45
		case income == 0 && debt != 2:
			return 0.2
		default:
			return 0.05
		}
	}
	joint := make([]float64, 3*3*2*2)
	for i := 0; i < 3; i++ {
		for d := 0; d < 3; d++ {
			for r := 0; r < 2; r++ {
				pa := approve(i, d)
				base := incomeP[i] * debtP[d] * regionP[r]
				joint[((i*3+d)*2+r)*2+0] = base * (1 - pa)
				joint[((i*3+d)*2+r)*2+1] = base * pa
			}
		}
	}
	return dataset.SyntheticTable(attrs, joint, 40000, randx.New(seed))
}
