package main

import (
	"bufio"
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDisguiseFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.txt")
	var in strings.Builder
	in.WriteString("# header comment\n")
	for i := 0; i < 300; i++ {
		in.WriteString("0\n1\n2\n")
	}
	if err := os.WriteFile(path, []byte(in.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	n, err := disguiseFile(path, 3, 0.8, 1, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	if n != 900 {
		t.Fatalf("disguiseFile reported %d records, want 900", n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) != 900 {
		t.Fatalf("disguised %d records, want 900", len(lines))
	}
	changed := 0
	for i, l := range lines {
		if l != []string{"0", "1", "2"}[i%3] {
			changed++
		}
	}
	// Warner p=0.8 changes ~20% of the records.
	if changed < 100 || changed > 300 {
		t.Fatalf("changed %d of 900 records, expected around 180", changed)
	}
}

func TestDisguiseTupleFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "multi.csv")
	var in strings.Builder
	in.WriteString("# a,b\n")
	for i := 0; i < 500; i++ {
		in.WriteString("0,1\n2, 0\n1\t2\n")
	}
	if err := os.WriteFile(path, []byte(in.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	n, err := disguiseTupleFile(path, []int{3, 3}, 0.8, 1, 0, w)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1500 {
		t.Fatalf("reported %d records, want 1500", n)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Fields(buf.String())
	if len(lines) != 1500 {
		t.Fatalf("wrote %d records, want 1500", len(lines))
	}
	changed := 0
	for i, l := range lines {
		parts := strings.Split(l, ",")
		if len(parts) != 2 {
			t.Fatalf("line %d: %q is not a 2-attribute record", i, l)
		}
		if l != []string{"0,1", "2,0", "1,2"}[i%3] {
			changed++
		}
	}
	// Each attribute flips with probability 0.2, so ~36% of records change.
	if changed < 300 || changed > 800 {
		t.Fatalf("changed %d of 1500 records, expected around 540", changed)
	}
}

func TestDisguiseTupleFileErrors(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if _, err := disguiseTupleFile("/nonexistent", []int{2, 2}, 0.8, 1, 0, w); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	short := filepath.Join(dir, "short.csv")
	if err := os.WriteFile(short, []byte("0,1\n0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disguiseTupleFile(short, []int{2, 2}, 0.8, 1, 0, w); err == nil {
		t.Fatal("short record accepted")
	}
	bad := filepath.Join(dir, "bad.csv")
	if err := os.WriteFile(bad, []byte("0,x\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disguiseTupleFile(bad, []int{2, 2}, 0.8, 1, 0, w); err == nil {
		t.Fatal("non-numeric attribute accepted")
	}
	outOfRange := filepath.Join(dir, "range.csv")
	if err := os.WriteFile(outOfRange, []byte("0,5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disguiseTupleFile(outOfRange, []int{2, 2}, 0.8, 1, 0, w); err == nil {
		t.Fatal("out-of-range attribute accepted")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes(" 8, 7,6 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 8 || got[1] != 7 || got[2] != 6 {
		t.Fatalf("parseSizes = %v", got)
	}
	if s, err := parseSizes(""); err != nil || s != nil {
		t.Fatalf("empty sizes: %v %v", s, err)
	}
	for _, bad := range []string{"8,x", "8,1", "8,,7"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(10, 10000, 0.7); err != nil {
		t.Fatalf("default flags rejected: %v", err)
	}
	for _, tc := range []struct {
		name       string
		categories int
		records    int
		warnerP    float64
	}{
		{"one category", 1, 10000, 0.7},
		{"zero records", 10, 0, 0.7},
		{"negative warner", 10, 10000, -0.1},
		{"warner above one", 10, 10000, 1.5},
	} {
		if err := validateFlags(tc.categories, tc.records, tc.warnerP); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

func TestDisguiseFileErrors(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if _, err := disguiseFile("/nonexistent", 3, 0.8, 1, 0, w); err == nil {
		t.Fatal("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("0\nx\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disguiseFile(bad, 3, 0.8, 1, 0, w); err == nil {
		t.Fatal("non-numeric record accepted")
	}
	outOfRange := filepath.Join(dir, "range.txt")
	if err := os.WriteFile(outOfRange, []byte("5\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := disguiseFile(outOfRange, 3, 0.8, 1, 0, w); err == nil {
		t.Fatal("out-of-range record accepted")
	}
	if _, err := disguiseFile(bad, 3, 1.5, 1, 0, w); err == nil {
		t.Fatal("invalid Warner parameter accepted")
	}
}
