// Command rrdata generates the synthetic categorical data sets used by the
// paper's experiments: one category index per output line, drawn from a
// named prior. It can also disguise an existing data file with a Warner
// matrix, producing the input a data collector would actually see.
//
// Examples:
//
//	rrdata -dist normal -categories 10 -records 10000 > normal.txt
//	rrdata -dist adult -records 30000 -seed 7 > adult.txt
//	rrdata -disguise normal.txt -categories 10 -warner 0.7 > disguised.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"optrr/internal/dataset"
	"optrr/internal/randx"
	"optrr/internal/rr"
)

func main() {
	var (
		dist       = flag.String("dist", "normal", "prior: normal, gamma, uniform, zipf, bimodal, adult")
		categories = flag.Int("categories", 10, "number of categories")
		records    = flag.Int("records", 10000, "number of records")
		seed       = flag.Uint64("seed", 1, "random seed")
		disguise   = flag.String("disguise", "", "disguise this data file instead of generating")
		warnerP    = flag.Float64("warner", 0.7, "Warner diagonal p for -disguise")
	)
	flag.Parse()

	rng := randx.New(*seed)
	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *disguise != "" {
		if err := disguiseFile(*disguise, *categories, *warnerP, rng, out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	var g dataset.Generator
	switch *dist {
	case "normal":
		g = dataset.DefaultNormal(*categories)
	case "gamma":
		g = dataset.GammaGenerator(1, 2)
	case "uniform":
		g = dataset.UniformGenerator()
	case "zipf":
		g = dataset.ZipfGenerator(1)
	case "bimodal":
		g = dataset.BimodalGenerator()
	case "adult":
		g = dataset.DefaultAdult().Generator()
	default:
		fmt.Fprintf(os.Stderr, "unknown -dist %q\n", *dist)
		os.Exit(2)
	}
	d, err := g.Generate(*categories, *records, rng)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, rec := range d.Records() {
		fmt.Fprintln(out, rec)
	}
}

func disguiseFile(path string, n int, p float64, rng *randx.Source, out *bufio.Writer) error {
	m, err := rr.Warner(n, p)
	if err != nil {
		return err
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var recs []int
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return fmt.Errorf("%s:%d: %v", path, line, err)
		}
		recs = append(recs, v)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	disguised, err := m.Disguise(recs, rng)
	if err != nil {
		return err
	}
	for _, rec := range disguised {
		fmt.Fprintln(out, rec)
	}
	return nil
}
