// Command rrdata generates the synthetic categorical data sets used by the
// paper's experiments: one category index per output line, drawn from a
// named prior. It can also disguise an existing data file with a Warner
// matrix, producing the input a data collector would actually see.
//
// Examples:
//
//	rrdata -dist normal -categories 10 -records 10000 > normal.txt
//	rrdata -dist adult -records 30000 -seed 7 > adult.txt
//	rrdata -disguise normal.txt -categories 10 -warner 0.7 > disguised.txt
//	rrdata -disguise multi.csv -sizes 8,7,6,5,4,3 -warner 0.7 > disguised.csv
//
// With -sizes, each input line is a multi-attribute record (values separated
// by commas or spaces) and attribute d is disguised independently with
// Warner(-warner) over sizes[d] categories — the Kronecker-factored tuple
// kernel, so arbitrarily large product spaces never materialize a joint
// matrix.
//
// Sampling and disguising both run on the batched kernels: fixed
// 8192-record chunks with per-chunk streams derived from -seed, fanned out
// over -workers goroutines (default GOMAXPROCS). The output depends only on
// the seed, never on the worker count.
//
// Observability: -trace file writes a JSONL event per generate/disguise
// stage (inspect with cmd/rrtrace or jq); -metrics-addr host:port serves
// expvar, pprof and /metrics.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"optrr/internal/dataset"
	"optrr/internal/obs"
	"optrr/internal/rr"
)

func main() {
	var (
		dist        = flag.String("dist", "normal", "prior: normal, gamma, uniform, zipf, bimodal, adult")
		categories  = flag.Int("categories", 10, "number of categories")
		records     = flag.Int("records", 10000, "number of records")
		seed        = flag.Uint64("seed", 1, "random seed")
		disguise    = flag.String("disguise", "", "disguise this data file instead of generating")
		warnerP     = flag.Float64("warner", 0.7, "Warner diagonal p for -disguise")
		sizesFlag   = flag.String("sizes", "", "comma-separated per-attribute category counts; with -disguise, treat each line as a multi-attribute record")
		workers     = flag.Int("workers", 0, "worker goroutines for sampling and disguising (0 = GOMAXPROCS); output does not depend on this")
		tracePath   = flag.String("trace", "", "write a JSONL run trace to this path")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar, pprof and /metrics on host:port while running")
	)
	flag.Parse()

	if err := validateFlags(*categories, *records, *warnerP); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sizes, err := parseSizes(*sizesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(sizes) > 0 && *disguise == "" {
		fmt.Fprintln(os.Stderr, "-sizes requires -disguise")
		os.Exit(2)
	}

	telem, err := obs.OpenCLI(*tracePath, *metricsAddr, "rrdata")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer telem.Close()
	if telem.MetricsURL != "" {
		fmt.Fprintf(os.Stderr, "metrics: %s/metrics\n", telem.MetricsURL)
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()

	if *disguise != "" {
		start := time.Now()
		var n int
		if len(sizes) > 0 {
			n, err = disguiseTupleFile(*disguise, sizes, *warnerP, *seed, *workers, out)
		} else {
			n, err = disguiseFile(*disguise, *categories, *warnerP, *seed, *workers, out)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		telem.Registry.Counter("rrdata.records_out").Add(int64(n))
		if telem.Recorder.Enabled() {
			telem.Recorder.Record("rrdata.disguise", obs.Fields{
				"input":   *disguise,
				"records": n,
				"warner":  *warnerP,
				"workers": *workers,
				"sizes":   *sizesFlag,
				"ms":      float64(time.Since(start).Microseconds()) / 1e3,
			})
		}
		return
	}

	var g dataset.Generator
	switch *dist {
	case "normal":
		g = dataset.DefaultNormal(*categories)
	case "gamma":
		g = dataset.GammaGenerator(1, 2)
	case "uniform":
		g = dataset.UniformGenerator()
	case "zipf":
		g = dataset.ZipfGenerator(1)
	case "bimodal":
		g = dataset.BimodalGenerator()
	case "adult":
		g = dataset.DefaultAdult().Generator()
	default:
		fmt.Fprintf(os.Stderr, "unknown -dist %q\n", *dist)
		os.Exit(2)
	}
	start := time.Now()
	d, err := generate(g, *categories, *records, *seed, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, rec := range d.Records() {
		fmt.Fprintln(out, rec)
	}
	telem.Registry.Counter("rrdata.records_out").Add(int64(len(d.Records())))
	if telem.Recorder.Enabled() {
		telem.Recorder.Record("rrdata.generate", obs.Fields{
			"dist":       *dist,
			"categories": *categories,
			"records":    len(d.Records()),
			"ms":         float64(time.Since(start).Microseconds()) / 1e3,
		})
	}
}

// validateFlags fails fast on flag values that rr or dataset would only
// reject after the generator has started producing output.
func validateFlags(categories, records int, warnerP float64) error {
	if categories < 2 {
		return fmt.Errorf("-categories must be at least 2, got %d", categories)
	}
	if records <= 0 {
		return fmt.Errorf("-records must be positive, got %d", records)
	}
	if warnerP < 0 || warnerP > 1 {
		return fmt.Errorf("-warner must be in [0, 1], got %v", warnerP)
	}
	return nil
}

// generate samples a data set from the generator's prior with the batched
// sampler: fixed chunks with per-chunk seed-derived streams, so the output
// depends only on the seed, not the worker count.
func generate(g dataset.Generator, categories, records int, seed uint64, workers int) (*dataset.Categorical, error) {
	prior := g.Prior(categories)
	d, err := dataset.SampleBatch(prior, records, seed, workers)
	if err != nil {
		return nil, fmt.Errorf("rrdata: generator %q: %w", g.Name, err)
	}
	return d, nil
}

// parseSizes parses the -sizes flag: a comma-separated list of per-attribute
// category counts, each at least 2. Empty input means single-attribute mode.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	sizes := make([]int, len(parts))
	for d, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("-sizes: attribute %d: %v", d, err)
		}
		if n < 2 {
			return nil, fmt.Errorf("-sizes: attribute %d must have at least 2 categories, got %d", d, n)
		}
		sizes[d] = n
	}
	return sizes, nil
}

// disguiseTupleFile disguises a multi-attribute data file — one record per
// line, attribute values separated by commas or spaces — applying
// Warner(p) over sizes[d] categories to attribute d with the batched tuple
// kernel. Output records are comma-separated. Returns how many records it
// wrote.
func disguiseTupleFile(path string, sizes []int, p float64, seed uint64, workers int, out *bufio.Writer) (int, error) {
	ms := make([]*rr.Matrix, len(sizes))
	for d, n := range sizes {
		m, err := rr.Warner(n, p)
		if err != nil {
			return 0, fmt.Errorf("attribute %d: %w", d, err)
		}
		ms[d] = m
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var recs [][]int
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
		if len(fields) != len(sizes) {
			return 0, fmt.Errorf("%s:%d: %d attributes, want %d", path, line, len(fields), len(sizes))
		}
		rec := make([]int, len(fields))
		for d, fld := range fields {
			v, err := strconv.Atoi(fld)
			if err != nil {
				return 0, fmt.Errorf("%s:%d: attribute %d: %v", path, line, d, err)
			}
			rec[d] = v
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	disguised, err := rr.TupleDisguiseBatch(ms, recs, seed, workers)
	if err != nil {
		return 0, err
	}
	var sb strings.Builder
	for _, rec := range disguised {
		sb.Reset()
		for d, v := range rec {
			if d > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(v))
		}
		fmt.Fprintln(out, sb.String())
	}
	return len(disguised), nil
}

// disguiseFile disguises every record of path with Warner(p) using the
// batched disguise kernel and returns how many records it wrote.
func disguiseFile(path string, n int, p float64, seed uint64, workers int, out *bufio.Writer) (int, error) {
	m, err := rr.Warner(n, p)
	if err != nil {
		return 0, err
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var recs []int
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return 0, fmt.Errorf("%s:%d: %v", path, line, err)
		}
		recs = append(recs, v)
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	disguised, err := m.DisguiseBatch(recs, seed, workers)
	if err != nil {
		return 0, err
	}
	for _, rec := range disguised {
		fmt.Fprintln(out, rec)
	}
	return len(disguised), nil
}
