// Command experiments regenerates the paper's tables and figures, plus this
// repository's extension and ablation experiments.
//
// Usage:
//
//	experiments [-run id[,id...]] [-list] [-generations n] [-records n]
//	            [-categories n] [-seed s] [-paper] [-quick] [-workers n]
//	            [-csv dir] [-plot]
//
// With no -run flag every registered experiment runs in paper order. The
// grid fans out over -workers goroutines (default GOMAXPROCS); results and
// output order are identical at every worker count. Each run prints the
// machine-checked shape claims (PASS/FAIL) and summary statistics; -plot
// adds an ASCII rendering of the fronts and -csv writes one CSV per
// experiment into the given directory for external plotting. The exit code
// is non-zero when any check fails.
//
// Observability: -trace file writes a JSONL run trace covering every
// experiment's optimizer events (analyze with cmd/rrtrace); -metrics-addr
// host:port serves expvar, pprof and /metrics while the grid runs.
package main

import (
	"context"
	"flag"
	"os"
	"os/signal"

	"optrr/internal/experiments"
)

func main() {
	var (
		runIDs      = flag.String("run", "", "comma-separated experiment ids (default: all)")
		list        = flag.Bool("list", false, "list registered experiments and exit")
		generations = flag.Int("generations", 0, "EMO generation budget (0 = default 3000; the paper used 20000)")
		records     = flag.Int("records", 0, "data-set size N (0 = default 10000)")
		categories  = flag.Int("categories", 0, "attribute categories n (0 = default 10)")
		seed        = flag.Uint64("seed", 1, "random seed")
		paper       = flag.Bool("paper", false, "use the paper's full-scale budgets (20000 generations)")
		quick       = flag.Bool("quick", false, "use a smoke-test budget (seconds per experiment)")
		csvDir      = flag.String("csv", "", "directory to write per-experiment CSV series into")
		plot        = flag.Bool("plot", false, "print ASCII plots of the fronts")
		workers     = flag.Int("workers", 0, "experiments to run concurrently (0 = GOMAXPROCS); figures do not depend on this")
		islands     = flag.Int("islands", 0, "island-model sub-populations per OptRR search (0 or 1 = single population; island figures differ from the pinned single-population ones)")
		migrate     = flag.Int("migrate-every", 0, "island migration interval in generations (0 = default 25)")
		tracePath   = flag.String("trace", "", "write a JSONL run trace to this path")
		metricsAddr = flag.String("metrics-addr", "", "serve expvar, pprof and /metrics on host:port while running")
		timeout     = flag.Duration("timeout", 0, "stop the whole run after this long (0 = no limit); Ctrl-C also stops gracefully")
	)
	flag.Parse()

	// Ctrl-C (and -timeout) cancel the run between generations: the current
	// experiment aborts with the context error and later experiments are
	// skipped, instead of the process dying mid-search.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	cfg := experiments.Config{}
	if *paper {
		cfg = experiments.Paper()
	}
	if *quick {
		cfg = experiments.Quick()
	}
	if *generations != 0 {
		cfg.Generations = *generations
	}
	if *records != 0 {
		cfg.Records = *records
	}
	if *categories != 0 {
		cfg.Categories = *categories
	}
	cfg.Seed = *seed
	cfg.Workers = *workers
	cfg.Islands = *islands
	cfg.MigrateEvery = *migrate
	cfg.Context = ctx

	os.Exit(run(options{
		runIDs:      *runIDs,
		list:        *list,
		cfg:         cfg,
		csvDir:      *csvDir,
		plot:        *plot,
		trace:       *tracePath,
		metricsAddr: *metricsAddr,
	}, os.Stdout, os.Stderr))
}
