package main

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"optrr/internal/experiments"
)

// TestRunCancelledContext: a cancelled context makes the run stop — the
// first experiment aborts with the context error, the rest are skipped, and
// the exit code is non-zero.
func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var out, errOut bytes.Buffer
	code := run(options{
		runIDs: "fig4a,fig4b",
		cfg:    experiments.Config{WarnerSteps: 100, Generations: 50, Context: ctx},
	}, &out, &errOut)
	if code == 0 {
		t.Fatalf("exit code 0 for a cancelled run; stdout: %s", out.String())
	}
	if !strings.Contains(errOut.String(), "context canceled") {
		t.Fatalf("stderr does not surface the cancellation: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "skipping remaining experiments") {
		t.Fatalf("run did not stop between experiments: %s", errOut.String())
	}
}

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(options{list: true}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, id := range []string{"fig4a", "fig5d", "thm2", "fact1", "ext-multi", "abl-omega"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("list output missing %q", id)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(options{runIDs: "nope"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Fatalf("stderr: %s", errOut.String())
	}
}

func TestRunFact1WithCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errOut bytes.Buffer
	code := run(options{
		runIDs: "fact1,thm2",
		cfg:    experiments.Config{WarnerSteps: 100, Generations: 1},
		csvDir: dir,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"[PASS]", "1.98e126", "identical"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "thm2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "series,privacy,utility") {
		t.Fatalf("csv header wrong: %q", string(data)[:40])
	}
}

func TestRunPlotOutput(t *testing.T) {
	var out, errOut bytes.Buffer
	code := run(options{
		runIDs: "thm2",
		cfg:    experiments.Config{WarnerSteps: 100, Generations: 1},
		plot:   true,
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "utility (MSE) vs privacy") {
		t.Fatalf("plot missing:\n%s", out.String())
	}
}

func TestRunWritesTraceAndServesMetrics(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "run.jsonl")
	var out, errOut bytes.Buffer
	code := run(options{
		runIDs:      "fact1,thm2",
		cfg:         experiments.Config{WarnerSteps: 100, Generations: 1},
		trace:       trace,
		metricsAddr: "127.0.0.1:0",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "metrics: http://127.0.0.1:") {
		t.Fatalf("metrics URL not printed:\n%s", out.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var ev struct {
			Event  string `json:"event"`
			ID     string `json:"id"`
			Passed bool   `json:"passed"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%s", err, line)
		}
		if ev.Event == "experiment.done" {
			if !ev.Passed {
				t.Errorf("experiment %s recorded as failed", ev.ID)
			}
			ids = append(ids, ev.ID)
		}
	}
	if len(ids) != 2 || ids[0] != "fact1" || ids[1] != "thm2" {
		t.Fatalf("experiment.done ids = %v", ids)
	}
}
