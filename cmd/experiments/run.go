package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"optrr/internal/experiments"
	"optrr/internal/obs"
)

// options carries the parsed command-line configuration; separating it from
// flag parsing keeps the runner testable.
type options struct {
	runIDs      string
	list        bool
	cfg         experiments.Config
	csvDir      string
	plot        bool
	trace       string
	metricsAddr string
}

// run executes the tool and returns the process exit code.
func run(opts options, stdout, stderr io.Writer) int {
	if opts.list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	telem, err := obs.OpenCLI(opts.trace, opts.metricsAddr, "experiments")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer telem.Close()
	if telem.MetricsURL != "" {
		fmt.Fprintf(stdout, "metrics: %s/metrics\n", telem.MetricsURL)
	}

	var selected []experiments.Experiment
	if opts.runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(opts.runIDs, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if opts.csvDir != "" {
		if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	// done records the outcome of one experiment in the trace and registry.
	// Emitted while walking the outcomes in input order, so the trace reads
	// the same whether the grid ran on one worker or many.
	done := func(id string, passed bool, elapsed time.Duration) {
		if passed {
			telem.Registry.Counter("experiments.passed").Add(1)
		} else {
			telem.Registry.Counter("experiments.failed").Add(1)
		}
		if telem.Recorder.Enabled() {
			telem.Recorder.Record("experiment.done", obs.Fields{
				"id":     id,
				"passed": passed,
				"ms":     float64(elapsed.Microseconds()) / 1e3,
			})
		}
	}

	// The grid fans the experiments out over cfg.Workers goroutines; every
	// cell gets the same configuration the serial loop used, so the figures
	// are identical at any worker count. Reporting below walks the outcomes
	// in input order.
	outcomes := experiments.RunGrid(selected, opts.cfg, experiments.GridOptions{
		Recorder: telem.Recorder,
		Registry: telem.Registry,
	})

	failed := 0
	for _, o := range outcomes {
		// A cancelled run (Ctrl-C, -timeout) skips the cells that had not
		// started yet; the interrupted experiments report their own errors.
		if o.Skipped {
			fmt.Fprintf(stderr, "run stopped (%v); skipping remaining experiments\n", o.Err)
			failed++
			break
		}
		rep, err := o.Report, o.Err
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", o.Experiment.ID, err)
			failed++
			done(o.Experiment.ID, false, o.Elapsed)
			continue
		}
		done(o.Experiment.ID, rep.Passed(), o.Elapsed)
		fmt.Fprintf(stdout, "%s(%s)\n", rep.Summary(), o.Elapsed.Round(time.Millisecond))
		if opts.plot {
			fmt.Fprintln(stdout, rep.ASCIIPlot())
		}
		if opts.csvDir != "" {
			if err := writeCSV(rep, opts.csvDir, stdout); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) with failing checks\n", failed)
		return 1
	}
	return 0
}

func writeCSV(rep *experiments.Report, dir string, stdout io.Writer) error {
	path := filepath.Join(dir, rep.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "   csv: %s\n", path)
	return nil
}
