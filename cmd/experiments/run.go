package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"optrr/internal/experiments"
	"optrr/internal/obs"
)

// options carries the parsed command-line configuration; separating it from
// flag parsing keeps the runner testable.
type options struct {
	runIDs      string
	list        bool
	cfg         experiments.Config
	csvDir      string
	plot        bool
	trace       string
	metricsAddr string
}

// run executes the tool and returns the process exit code.
func run(opts options, stdout, stderr io.Writer) int {
	if opts.list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-20s %s\n", e.ID, e.Title)
		}
		return 0
	}

	telem, err := obs.OpenCLI(opts.trace, opts.metricsAddr, "experiments")
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	defer telem.Close()
	if telem.MetricsURL != "" {
		fmt.Fprintf(stdout, "metrics: %s/metrics\n", telem.MetricsURL)
	}

	var selected []experiments.Experiment
	if opts.runIDs == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(opts.runIDs, ",") {
			e, err := experiments.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	if opts.csvDir != "" {
		if err := os.MkdirAll(opts.csvDir, 0o755); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	}

	// done records the outcome of one experiment in the trace and registry.
	done := func(id string, passed bool, start time.Time) {
		if passed {
			telem.Registry.Counter("experiments.passed").Add(1)
		} else {
			telem.Registry.Counter("experiments.failed").Add(1)
		}
		if telem.Recorder.Enabled() {
			telem.Recorder.Record("experiment.done", obs.Fields{
				"id":     id,
				"passed": passed,
				"ms":     float64(time.Since(start).Microseconds()) / 1e3,
			})
		}
	}

	failed := 0
	for _, e := range selected {
		// A cancelled run (Ctrl-C, -timeout) stops between experiments;
		// the interrupted experiment itself has already reported its error.
		if ctx := opts.cfg.Context; ctx != nil && ctx.Err() != nil {
			fmt.Fprintf(stderr, "run stopped (%v); skipping remaining experiments\n", ctx.Err())
			failed++
			break
		}
		start := time.Now()
		rep, err := e.Run(opts.cfg)
		if err != nil {
			fmt.Fprintf(stderr, "%s: %v\n", e.ID, err)
			failed++
			done(e.ID, false, start)
			continue
		}
		done(e.ID, rep.Passed(), start)
		fmt.Fprintf(stdout, "%s(%s)\n", rep.Summary(), time.Since(start).Round(time.Millisecond))
		if opts.plot {
			fmt.Fprintln(stdout, rep.ASCIIPlot())
		}
		if opts.csvDir != "" {
			if err := writeCSV(rep, opts.csvDir, stdout); err != nil {
				fmt.Fprintln(stderr, err)
				return 1
			}
		}
		if !rep.Passed() {
			failed++
		}
	}
	if failed > 0 {
		fmt.Fprintf(stderr, "%d experiment(s) with failing checks\n", failed)
		return 1
	}
	return 0
}

func writeCSV(rep *experiments.Report, dir string, stdout io.Writer) error {
	path := filepath.Join(dir, rep.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "   csv: %s\n", path)
	return nil
}
