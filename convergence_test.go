package optrr_test

// Convergence tests: deeper runs asserting the paper's headline quantitative
// claims, skipped in -short mode (each takes a few seconds).

import (
	"testing"

	"optrr"
	"optrr/internal/dataset"
	"optrr/internal/metrics"
	"optrr/internal/pareto"
	"optrr/internal/rr"
)

// TestConvergenceFig4dFloor asserts the sharpest reproduced number of the
// paper: with the normal prior and δ = 0.9, OptRR's front reaches privacy
// below Warner's floor and close to the paper's reported ≈0.17 (the
// theoretical limit is 1 − δ = 0.1).
func TestConvergenceFig4dFloor(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run skipped in -short mode")
	}
	prior := dataset.DefaultNormal(10).Prior(10)
	const (
		records = 10000
		delta   = 0.9
	)
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     records,
		Delta:       delta,
		Seed:        1,
		Generations: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	floor := res.Front[0].Privacy
	if floor > 0.20 {
		t.Fatalf("OptRR privacy floor %v at delta=0.9, paper reports ~0.17", floor)
	}

	// Warner's floor under the same bound, for the extension claim.
	warnerFloor := 1.0
	for k := 0; k <= 1000; k++ {
		m, err := rr.Warner(10, float64(k)/1000)
		if err != nil {
			continue
		}
		ok, err := metrics.MeetsBound(m, prior, delta)
		if err != nil || !ok {
			continue
		}
		priv, err := metrics.Privacy(m, prior)
		if err != nil {
			continue
		}
		if _, uerr := metrics.Utility(m, prior, records); uerr != nil {
			continue
		}
		if priv < warnerFloor {
			warnerFloor = priv
		}
	}
	if floor >= warnerFloor {
		t.Fatalf("no range extension: OptRR floor %v vs Warner floor %v", floor, warnerFloor)
	}
}

// TestConvergenceGammaDominance asserts the Figure 5(a) magnitude: on the
// gamma prior the MSE advantage at the top of Warner's range exceeds 3x.
func TestConvergenceGammaDominance(t *testing.T) {
	if testing.Short() {
		t.Skip("convergence run skipped in -short mode")
	}
	prior := dataset.GammaGenerator(1, 2).Prior(10)
	const (
		records = 10000
		delta   = 0.75
	)
	res, err := optrr.Optimize(optrr.Problem{
		Prior:       prior,
		Records:     records,
		Delta:       delta,
		Seed:        2,
		Generations: 3000,
	})
	if err != nil {
		t.Fatal(err)
	}
	var warner []pareto.Point
	for k := 0; k <= 1000; k++ {
		m, err := rr.Warner(10, float64(k)/1000)
		if err != nil {
			continue
		}
		ok, err := metrics.MeetsBound(m, prior, delta)
		if err != nil || !ok {
			continue
		}
		ev, err := metrics.Evaluate(m, prior, records)
		if err != nil {
			continue
		}
		warner = append(warner, pareto.Point{Privacy: ev.Privacy, Utility: ev.Utility})
	}
	wf := pareto.FrontPoints(warner)
	_, wMax := pareto.PrivacyRange(wf)
	level := wMax - 0.01
	wu, wok := pareto.UtilityAt(wf, level)
	var of []pareto.Point
	for _, p := range res.Front {
		of = append(of, pareto.Point{Privacy: p.Privacy, Utility: p.Utility})
	}
	ou, ook := pareto.UtilityAt(of, level)
	if !wok || !ook {
		t.Fatalf("no utility at privacy level %v", level)
	}
	if ratio := wu / ou; ratio < 3 {
		t.Fatalf("MSE advantage at privacy %v is only %.2fx, paper shows a much larger factor", level, ratio)
	}
}
